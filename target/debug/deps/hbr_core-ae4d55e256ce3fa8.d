/root/repo/target/debug/deps/hbr_core-ae4d55e256ce3fa8.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/detector.rs crates/core/src/experiment.rs crates/core/src/feedback.rs crates/core/src/fleet.rs crates/core/src/incentive.rs crates/core/src/monitor.rs crates/core/src/scheduler.rs crates/core/src/world.rs

/root/repo/target/debug/deps/libhbr_core-ae4d55e256ce3fa8.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/detector.rs crates/core/src/experiment.rs crates/core/src/feedback.rs crates/core/src/fleet.rs crates/core/src/incentive.rs crates/core/src/monitor.rs crates/core/src/scheduler.rs crates/core/src/world.rs

/root/repo/target/debug/deps/libhbr_core-ae4d55e256ce3fa8.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/detector.rs crates/core/src/experiment.rs crates/core/src/feedback.rs crates/core/src/fleet.rs crates/core/src/incentive.rs crates/core/src/monitor.rs crates/core/src/scheduler.rs crates/core/src/world.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/detector.rs:
crates/core/src/experiment.rs:
crates/core/src/feedback.rs:
crates/core/src/fleet.rs:
crates/core/src/incentive.rs:
crates/core/src/monitor.rs:
crates/core/src/scheduler.rs:
crates/core/src/world.rs:
