/root/repo/target/debug/deps/hbr_bench-420aad2984c21d26.d: crates/bench/src/lib.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/hbr_bench-420aad2984c21d26: crates/bench/src/lib.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/sweep.rs:
