/root/repo/target/debug/deps/ablation_idle-1b7e6ff55d72b2f4.d: crates/bench/src/bin/ablation_idle.rs Cargo.toml

/root/repo/target/debug/deps/libablation_idle-1b7e6ff55d72b2f4.rmeta: crates/bench/src/bin/ablation_idle.rs Cargo.toml

crates/bench/src/bin/ablation_idle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
