/root/repo/target/debug/deps/churn-700f6fd2a665b092.d: tests/churn.rs

/root/repo/target/debug/deps/churn-700f6fd2a665b092: tests/churn.rs

tests/churn.rs:
