/root/repo/target/debug/deps/hbr_bench-1e16958048793e35.d: crates/bench/src/lib.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/libhbr_bench-1e16958048793e35.rlib: crates/bench/src/lib.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/libhbr_bench-1e16958048793e35.rmeta: crates/bench/src/lib.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/sweep.rs:
