/root/repo/target/debug/deps/exp_fig12-f464e9059d7d7b29.d: crates/bench/src/bin/exp_fig12.rs

/root/repo/target/debug/deps/exp_fig12-f464e9059d7d7b29: crates/bench/src/bin/exp_fig12.rs

crates/bench/src/bin/exp_fig12.rs:
