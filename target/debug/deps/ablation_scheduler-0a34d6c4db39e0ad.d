/root/repo/target/debug/deps/ablation_scheduler-0a34d6c4db39e0ad.d: crates/bench/src/bin/ablation_scheduler.rs

/root/repo/target/debug/deps/ablation_scheduler-0a34d6c4db39e0ad: crates/bench/src/bin/ablation_scheduler.rs

crates/bench/src/bin/ablation_scheduler.rs:
