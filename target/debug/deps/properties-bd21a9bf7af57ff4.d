/root/repo/target/debug/deps/properties-bd21a9bf7af57ff4.d: crates/sim/tests/properties.rs

/root/repo/target/debug/deps/properties-bd21a9bf7af57ff4: crates/sim/tests/properties.rs

crates/sim/tests/properties.rs:
