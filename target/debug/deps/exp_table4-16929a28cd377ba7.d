/root/repo/target/debug/deps/exp_table4-16929a28cd377ba7.d: crates/bench/src/bin/exp_table4.rs Cargo.toml

/root/repo/target/debug/deps/libexp_table4-16929a28cd377ba7.rmeta: crates/bench/src/bin/exp_table4.rs Cargo.toml

crates/bench/src/bin/exp_table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
