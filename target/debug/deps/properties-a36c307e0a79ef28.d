/root/repo/target/debug/deps/properties-a36c307e0a79ef28.d: crates/cellular/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-a36c307e0a79ef28.rmeta: crates/cellular/tests/properties.rs Cargo.toml

crates/cellular/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
