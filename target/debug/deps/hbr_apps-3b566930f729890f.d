/root/repo/target/debug/deps/hbr_apps-3b566930f729890f.d: crates/apps/src/lib.rs crates/apps/src/generator.rs crates/apps/src/message.rs crates/apps/src/profile.rs crates/apps/src/server.rs

/root/repo/target/debug/deps/hbr_apps-3b566930f729890f: crates/apps/src/lib.rs crates/apps/src/generator.rs crates/apps/src/message.rs crates/apps/src/profile.rs crates/apps/src/server.rs

crates/apps/src/lib.rs:
crates/apps/src/generator.rs:
crates/apps/src/message.rs:
crates/apps/src/profile.rs:
crates/apps/src/server.rs:
