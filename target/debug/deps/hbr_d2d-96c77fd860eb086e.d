/root/repo/target/debug/deps/hbr_d2d-96c77fd860eb086e.d: crates/d2d/src/lib.rs crates/d2d/src/group.rs crates/d2d/src/group_net.rs crates/d2d/src/link.rs crates/d2d/src/tech.rs

/root/repo/target/debug/deps/hbr_d2d-96c77fd860eb086e: crates/d2d/src/lib.rs crates/d2d/src/group.rs crates/d2d/src/group_net.rs crates/d2d/src/link.rs crates/d2d/src/tech.rs

crates/d2d/src/lib.rs:
crates/d2d/src/group.rs:
crates/d2d/src/group_net.rs:
crates/d2d/src/link.rs:
crates/d2d/src/tech.rs:
