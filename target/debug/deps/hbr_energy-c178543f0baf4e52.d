/root/repo/target/debug/deps/hbr_energy-c178543f0baf4e52.d: crates/energy/src/lib.rs crates/energy/src/battery.rs crates/energy/src/meter.rs crates/energy/src/monitor.rs crates/energy/src/phase.rs crates/energy/src/profile.rs crates/energy/src/units.rs Cargo.toml

/root/repo/target/debug/deps/libhbr_energy-c178543f0baf4e52.rmeta: crates/energy/src/lib.rs crates/energy/src/battery.rs crates/energy/src/meter.rs crates/energy/src/monitor.rs crates/energy/src/phase.rs crates/energy/src/profile.rs crates/energy/src/units.rs Cargo.toml

crates/energy/src/lib.rs:
crates/energy/src/battery.rs:
crates/energy/src/meter.rs:
crates/energy/src/monitor.rs:
crates/energy/src/phase.rs:
crates/energy/src/profile.rs:
crates/energy/src/units.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
