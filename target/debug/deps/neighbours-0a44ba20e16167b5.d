/root/repo/target/debug/deps/neighbours-0a44ba20e16167b5.d: crates/bench/benches/neighbours.rs Cargo.toml

/root/repo/target/debug/deps/libneighbours-0a44ba20e16167b5.rmeta: crates/bench/benches/neighbours.rs Cargo.toml

crates/bench/benches/neighbours.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
