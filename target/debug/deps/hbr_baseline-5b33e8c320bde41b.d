/root/repo/target/debug/deps/hbr_baseline-5b33e8c320bde41b.d: crates/baseline/src/lib.rs crates/baseline/src/strategy.rs

/root/repo/target/debug/deps/libhbr_baseline-5b33e8c320bde41b.rlib: crates/baseline/src/lib.rs crates/baseline/src/strategy.rs

/root/repo/target/debug/deps/libhbr_baseline-5b33e8c320bde41b.rmeta: crates/baseline/src/lib.rs crates/baseline/src/strategy.rs

crates/baseline/src/lib.rs:
crates/baseline/src/strategy.rs:
