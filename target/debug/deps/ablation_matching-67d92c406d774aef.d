/root/repo/target/debug/deps/ablation_matching-67d92c406d774aef.d: crates/bench/src/bin/ablation_matching.rs

/root/repo/target/debug/deps/ablation_matching-67d92c406d774aef: crates/bench/src/bin/ablation_matching.rs

crates/bench/src/bin/ablation_matching.rs:
