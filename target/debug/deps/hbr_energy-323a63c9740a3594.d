/root/repo/target/debug/deps/hbr_energy-323a63c9740a3594.d: crates/energy/src/lib.rs crates/energy/src/battery.rs crates/energy/src/meter.rs crates/energy/src/monitor.rs crates/energy/src/phase.rs crates/energy/src/profile.rs crates/energy/src/units.rs

/root/repo/target/debug/deps/libhbr_energy-323a63c9740a3594.rlib: crates/energy/src/lib.rs crates/energy/src/battery.rs crates/energy/src/meter.rs crates/energy/src/monitor.rs crates/energy/src/phase.rs crates/energy/src/profile.rs crates/energy/src/units.rs

/root/repo/target/debug/deps/libhbr_energy-323a63c9740a3594.rmeta: crates/energy/src/lib.rs crates/energy/src/battery.rs crates/energy/src/meter.rs crates/energy/src/monitor.rs crates/energy/src/phase.rs crates/energy/src/profile.rs crates/energy/src/units.rs

crates/energy/src/lib.rs:
crates/energy/src/battery.rs:
crates/energy/src/meter.rs:
crates/energy/src/monitor.rs:
crates/energy/src/phase.rs:
crates/energy/src/profile.rs:
crates/energy/src/units.rs:
