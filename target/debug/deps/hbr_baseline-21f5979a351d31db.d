/root/repo/target/debug/deps/hbr_baseline-21f5979a351d31db.d: crates/baseline/src/lib.rs crates/baseline/src/strategy.rs Cargo.toml

/root/repo/target/debug/deps/libhbr_baseline-21f5979a351d31db.rmeta: crates/baseline/src/lib.rs crates/baseline/src/strategy.rs Cargo.toml

crates/baseline/src/lib.rs:
crates/baseline/src/strategy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
