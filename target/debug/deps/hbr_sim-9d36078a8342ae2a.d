/root/repo/target/debug/deps/hbr_sim-9d36078a8342ae2a.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/ids.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/hbr_sim-9d36078a8342ae2a: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/ids.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/ids.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
