/root/repo/target/debug/deps/exp_fleet_sizing-b8d22cc4b66952ce.d: crates/bench/src/bin/exp_fleet_sizing.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fleet_sizing-b8d22cc4b66952ce.rmeta: crates/bench/src/bin/exp_fleet_sizing.rs Cargo.toml

crates/bench/src/bin/exp_fleet_sizing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
