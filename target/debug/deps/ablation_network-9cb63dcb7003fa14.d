/root/repo/target/debug/deps/ablation_network-9cb63dcb7003fa14.d: crates/bench/src/bin/ablation_network.rs

/root/repo/target/debug/deps/ablation_network-9cb63dcb7003fa14: crates/bench/src/bin/ablation_network.rs

crates/bench/src/bin/ablation_network.rs:
