/root/repo/target/debug/deps/exp_fig6_fig7-62b752610c67bfb4.d: crates/bench/src/bin/exp_fig6_fig7.rs

/root/repo/target/debug/deps/exp_fig6_fig7-62b752610c67bfb4: crates/bench/src/bin/exp_fig6_fig7.rs

crates/bench/src/bin/exp_fig6_fig7.rs:
