/root/repo/target/debug/deps/properties-731ad2a4cab338e0.d: crates/energy/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-731ad2a4cab338e0.rmeta: crates/energy/tests/properties.rs Cargo.toml

crates/energy/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
