/root/repo/target/debug/deps/exp_periodic_classes-1c1f619e0a65008a.d: crates/bench/src/bin/exp_periodic_classes.rs

/root/repo/target/debug/deps/exp_periodic_classes-1c1f619e0a65008a: crates/bench/src/bin/exp_periodic_classes.rs

crates/bench/src/bin/exp_periodic_classes.rs:
