/root/repo/target/debug/deps/exp_fig13-374c2b7856cbb6a7.d: crates/bench/src/bin/exp_fig13.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig13-374c2b7856cbb6a7.rmeta: crates/bench/src/bin/exp_fig13.rs Cargo.toml

crates/bench/src/bin/exp_fig13.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
