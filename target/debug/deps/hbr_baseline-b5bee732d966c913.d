/root/repo/target/debug/deps/hbr_baseline-b5bee732d966c913.d: crates/baseline/src/lib.rs crates/baseline/src/strategy.rs

/root/repo/target/debug/deps/hbr_baseline-b5bee732d966c913: crates/baseline/src/lib.rs crates/baseline/src/strategy.rs

crates/baseline/src/lib.rs:
crates/baseline/src/strategy.rs:
