/root/repo/target/debug/deps/paper_claims-56f7c97abfbc1c9f.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-56f7c97abfbc1c9f: tests/paper_claims.rs

tests/paper_claims.rs:
