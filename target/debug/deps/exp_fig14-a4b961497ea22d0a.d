/root/repo/target/debug/deps/exp_fig14-a4b961497ea22d0a.d: crates/bench/src/bin/exp_fig14.rs

/root/repo/target/debug/deps/exp_fig14-a4b961497ea22d0a: crates/bench/src/bin/exp_fig14.rs

crates/bench/src/bin/exp_fig14.rs:
