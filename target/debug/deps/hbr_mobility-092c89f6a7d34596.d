/root/repo/target/debug/deps/hbr_mobility-092c89f6a7d34596.d: crates/mobility/src/lib.rs crates/mobility/src/field.rs crates/mobility/src/grid.rs crates/mobility/src/model.rs crates/mobility/src/position.rs crates/mobility/src/rssi.rs

/root/repo/target/debug/deps/libhbr_mobility-092c89f6a7d34596.rlib: crates/mobility/src/lib.rs crates/mobility/src/field.rs crates/mobility/src/grid.rs crates/mobility/src/model.rs crates/mobility/src/position.rs crates/mobility/src/rssi.rs

/root/repo/target/debug/deps/libhbr_mobility-092c89f6a7d34596.rmeta: crates/mobility/src/lib.rs crates/mobility/src/field.rs crates/mobility/src/grid.rs crates/mobility/src/model.rs crates/mobility/src/position.rs crates/mobility/src/rssi.rs

crates/mobility/src/lib.rs:
crates/mobility/src/field.rs:
crates/mobility/src/grid.rs:
crates/mobility/src/model.rs:
crates/mobility/src/position.rs:
crates/mobility/src/rssi.rs:
