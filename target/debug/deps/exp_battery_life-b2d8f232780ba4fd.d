/root/repo/target/debug/deps/exp_battery_life-b2d8f232780ba4fd.d: crates/bench/src/bin/exp_battery_life.rs

/root/repo/target/debug/deps/exp_battery_life-b2d8f232780ba4fd: crates/bench/src/bin/exp_battery_life.rs

crates/bench/src/bin/exp_battery_life.rs:
