/root/repo/target/debug/deps/d2d_heartbeat-06991e973ec7e4fb.d: src/lib.rs

/root/repo/target/debug/deps/libd2d_heartbeat-06991e973ec7e4fb.rlib: src/lib.rs

/root/repo/target/debug/deps/libd2d_heartbeat-06991e973ec7e4fb.rmeta: src/lib.rs

src/lib.rs:
