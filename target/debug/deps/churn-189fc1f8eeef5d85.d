/root/repo/target/debug/deps/churn-189fc1f8eeef5d85.d: tests/churn.rs Cargo.toml

/root/repo/target/debug/deps/libchurn-189fc1f8eeef5d85.rmeta: tests/churn.rs Cargo.toml

tests/churn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
