/root/repo/target/debug/deps/ablation_network-3257a59c790259e0.d: crates/bench/src/bin/ablation_network.rs Cargo.toml

/root/repo/target/debug/deps/libablation_network-3257a59c790259e0.rmeta: crates/bench/src/bin/ablation_network.rs Cargo.toml

crates/bench/src/bin/ablation_network.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
