/root/repo/target/debug/deps/hbr_cellular-00f1af365e2ef96c.d: crates/cellular/src/lib.rs crates/cellular/src/bs.rs crates/cellular/src/config.rs crates/cellular/src/l3.rs crates/cellular/src/radio.rs

/root/repo/target/debug/deps/hbr_cellular-00f1af365e2ef96c: crates/cellular/src/lib.rs crates/cellular/src/bs.rs crates/cellular/src/config.rs crates/cellular/src/l3.rs crates/cellular/src/radio.rs

crates/cellular/src/lib.rs:
crates/cellular/src/bs.rs:
crates/cellular/src/config.rs:
crates/cellular/src/l3.rs:
crates/cellular/src/radio.rs:
