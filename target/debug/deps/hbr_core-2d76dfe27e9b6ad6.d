/root/repo/target/debug/deps/hbr_core-2d76dfe27e9b6ad6.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/detector.rs crates/core/src/experiment.rs crates/core/src/feedback.rs crates/core/src/fleet.rs crates/core/src/incentive.rs crates/core/src/monitor.rs crates/core/src/scheduler.rs crates/core/src/world.rs

/root/repo/target/debug/deps/hbr_core-2d76dfe27e9b6ad6: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/detector.rs crates/core/src/experiment.rs crates/core/src/feedback.rs crates/core/src/fleet.rs crates/core/src/incentive.rs crates/core/src/monitor.rs crates/core/src/scheduler.rs crates/core/src/world.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/detector.rs:
crates/core/src/experiment.rs:
crates/core/src/feedback.rs:
crates/core/src/fleet.rs:
crates/core/src/incentive.rs:
crates/core/src/monitor.rs:
crates/core/src/scheduler.rs:
crates/core/src/world.rs:
