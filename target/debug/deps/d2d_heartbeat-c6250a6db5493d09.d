/root/repo/target/debug/deps/d2d_heartbeat-c6250a6db5493d09.d: src/lib.rs

/root/repo/target/debug/deps/d2d_heartbeat-c6250a6db5493d09: src/lib.rs

src/lib.rs:
