/root/repo/target/debug/deps/hbr-615244e7f2d1fd6a.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/hbr-615244e7f2d1fd6a: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
