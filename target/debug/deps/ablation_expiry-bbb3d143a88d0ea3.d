/root/repo/target/debug/deps/ablation_expiry-bbb3d143a88d0ea3.d: crates/bench/src/bin/ablation_expiry.rs Cargo.toml

/root/repo/target/debug/deps/libablation_expiry-bbb3d143a88d0ea3.rmeta: crates/bench/src/bin/ablation_expiry.rs Cargo.toml

crates/bench/src/bin/ablation_expiry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
