/root/repo/target/debug/deps/exp_fig10_fig11-64df71ebd29b667c.d: crates/bench/src/bin/exp_fig10_fig11.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig10_fig11-64df71ebd29b667c.rmeta: crates/bench/src/bin/exp_fig10_fig11.rs Cargo.toml

crates/bench/src/bin/exp_fig10_fig11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
