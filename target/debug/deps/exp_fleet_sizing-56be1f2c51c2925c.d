/root/repo/target/debug/deps/exp_fleet_sizing-56be1f2c51c2925c.d: crates/bench/src/bin/exp_fleet_sizing.rs

/root/repo/target/debug/deps/exp_fleet_sizing-56be1f2c51c2925c: crates/bench/src/bin/exp_fleet_sizing.rs

crates/bench/src/bin/exp_fleet_sizing.rs:
