/root/repo/target/debug/deps/exp_battery_life-36d45294c21dd6c1.d: crates/bench/src/bin/exp_battery_life.rs Cargo.toml

/root/repo/target/debug/deps/libexp_battery_life-36d45294c21dd6c1.rmeta: crates/bench/src/bin/exp_battery_life.rs Cargo.toml

crates/bench/src/bin/exp_battery_life.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
