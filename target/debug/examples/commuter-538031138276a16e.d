/root/repo/target/debug/examples/commuter-538031138276a16e.d: examples/commuter.rs Cargo.toml

/root/repo/target/debug/examples/libcommuter-538031138276a16e.rmeta: examples/commuter.rs Cargo.toml

examples/commuter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
