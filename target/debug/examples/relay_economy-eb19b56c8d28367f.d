/root/repo/target/debug/examples/relay_economy-eb19b56c8d28367f.d: examples/relay_economy.rs

/root/repo/target/debug/examples/relay_economy-eb19b56c8d28367f: examples/relay_economy.rs

examples/relay_economy.rs:
