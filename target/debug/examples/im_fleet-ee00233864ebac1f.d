/root/repo/target/debug/examples/im_fleet-ee00233864ebac1f.d: examples/im_fleet.rs

/root/repo/target/debug/examples/im_fleet-ee00233864ebac1f: examples/im_fleet.rs

examples/im_fleet.rs:
