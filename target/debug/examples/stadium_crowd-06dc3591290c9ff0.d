/root/repo/target/debug/examples/stadium_crowd-06dc3591290c9ff0.d: examples/stadium_crowd.rs Cargo.toml

/root/repo/target/debug/examples/libstadium_crowd-06dc3591290c9ff0.rmeta: examples/stadium_crowd.rs Cargo.toml

examples/stadium_crowd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
