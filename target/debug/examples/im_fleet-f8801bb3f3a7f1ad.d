/root/repo/target/debug/examples/im_fleet-f8801bb3f3a7f1ad.d: examples/im_fleet.rs Cargo.toml

/root/repo/target/debug/examples/libim_fleet-f8801bb3f3a7f1ad.rmeta: examples/im_fleet.rs Cargo.toml

examples/im_fleet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
