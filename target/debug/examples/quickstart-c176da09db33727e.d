/root/repo/target/debug/examples/quickstart-c176da09db33727e.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c176da09db33727e: examples/quickstart.rs

examples/quickstart.rs:
