/root/repo/target/debug/examples/commuter-2fdf60073cc028cd.d: examples/commuter.rs

/root/repo/target/debug/examples/commuter-2fdf60073cc028cd: examples/commuter.rs

examples/commuter.rs:
