/root/repo/target/debug/examples/stadium_crowd-06176c3f45ff8421.d: examples/stadium_crowd.rs

/root/repo/target/debug/examples/stadium_crowd-06176c3f45ff8421: examples/stadium_crowd.rs

examples/stadium_crowd.rs:
