/root/repo/target/debug/examples/relay_economy-440a312584a8d15e.d: examples/relay_economy.rs Cargo.toml

/root/repo/target/debug/examples/librelay_economy-440a312584a8d15e.rmeta: examples/relay_economy.rs Cargo.toml

examples/relay_economy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
