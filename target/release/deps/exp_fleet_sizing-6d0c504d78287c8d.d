/root/repo/target/release/deps/exp_fleet_sizing-6d0c504d78287c8d.d: crates/bench/src/bin/exp_fleet_sizing.rs

/root/repo/target/release/deps/exp_fleet_sizing-6d0c504d78287c8d: crates/bench/src/bin/exp_fleet_sizing.rs

crates/bench/src/bin/exp_fleet_sizing.rs:
