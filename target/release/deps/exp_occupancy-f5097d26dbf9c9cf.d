/root/repo/target/release/deps/exp_occupancy-f5097d26dbf9c9cf.d: crates/bench/src/bin/exp_occupancy.rs

/root/repo/target/release/deps/exp_occupancy-f5097d26dbf9c9cf: crates/bench/src/bin/exp_occupancy.rs

crates/bench/src/bin/exp_occupancy.rs:
