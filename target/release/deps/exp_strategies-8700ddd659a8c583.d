/root/repo/target/release/deps/exp_strategies-8700ddd659a8c583.d: crates/bench/src/bin/exp_strategies.rs

/root/repo/target/release/deps/exp_strategies-8700ddd659a8c583: crates/bench/src/bin/exp_strategies.rs

crates/bench/src/bin/exp_strategies.rs:
