/root/repo/target/release/deps/exp_fig15-798482ad05f27446.d: crates/bench/src/bin/exp_fig15.rs

/root/repo/target/release/deps/exp_fig15-798482ad05f27446: crates/bench/src/bin/exp_fig15.rs

crates/bench/src/bin/exp_fig15.rs:
