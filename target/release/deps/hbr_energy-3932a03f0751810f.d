/root/repo/target/release/deps/hbr_energy-3932a03f0751810f.d: crates/energy/src/lib.rs crates/energy/src/battery.rs crates/energy/src/meter.rs crates/energy/src/monitor.rs crates/energy/src/phase.rs crates/energy/src/profile.rs crates/energy/src/units.rs

/root/repo/target/release/deps/libhbr_energy-3932a03f0751810f.rlib: crates/energy/src/lib.rs crates/energy/src/battery.rs crates/energy/src/meter.rs crates/energy/src/monitor.rs crates/energy/src/phase.rs crates/energy/src/profile.rs crates/energy/src/units.rs

/root/repo/target/release/deps/libhbr_energy-3932a03f0751810f.rmeta: crates/energy/src/lib.rs crates/energy/src/battery.rs crates/energy/src/meter.rs crates/energy/src/monitor.rs crates/energy/src/phase.rs crates/energy/src/profile.rs crates/energy/src/units.rs

crates/energy/src/lib.rs:
crates/energy/src/battery.rs:
crates/energy/src/meter.rs:
crates/energy/src/monitor.rs:
crates/energy/src/phase.rs:
crates/energy/src/profile.rs:
crates/energy/src/units.rs:
