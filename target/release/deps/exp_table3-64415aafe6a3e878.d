/root/repo/target/release/deps/exp_table3-64415aafe6a3e878.d: crates/bench/src/bin/exp_table3.rs

/root/repo/target/release/deps/exp_table3-64415aafe6a3e878: crates/bench/src/bin/exp_table3.rs

crates/bench/src/bin/exp_table3.rs:
