/root/repo/target/release/deps/exp_motivation-430f950d2e371ec3.d: crates/bench/src/bin/exp_motivation.rs

/root/repo/target/release/deps/exp_motivation-430f950d2e371ec3: crates/bench/src/bin/exp_motivation.rs

crates/bench/src/bin/exp_motivation.rs:
