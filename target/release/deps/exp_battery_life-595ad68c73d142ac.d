/root/repo/target/release/deps/exp_battery_life-595ad68c73d142ac.d: crates/bench/src/bin/exp_battery_life.rs

/root/repo/target/release/deps/exp_battery_life-595ad68c73d142ac: crates/bench/src/bin/exp_battery_life.rs

crates/bench/src/bin/exp_battery_life.rs:
