/root/repo/target/release/deps/ablation_scheduler-f798f67ea221173c.d: crates/bench/src/bin/ablation_scheduler.rs

/root/repo/target/release/deps/ablation_scheduler-f798f67ea221173c: crates/bench/src/bin/ablation_scheduler.rs

crates/bench/src/bin/ablation_scheduler.rs:
