/root/repo/target/release/deps/exp_fig14-dc3a41cf493ab142.d: crates/bench/src/bin/exp_fig14.rs

/root/repo/target/release/deps/exp_fig14-dc3a41cf493ab142: crates/bench/src/bin/exp_fig14.rs

crates/bench/src/bin/exp_fig14.rs:
