/root/repo/target/release/deps/exp_operator-7335747f35574497.d: crates/bench/src/bin/exp_operator.rs

/root/repo/target/release/deps/exp_operator-7335747f35574497: crates/bench/src/bin/exp_operator.rs

crates/bench/src/bin/exp_operator.rs:
