/root/repo/target/release/deps/hbr_sim-850d535bfe8229fb.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/ids.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libhbr_sim-850d535bfe8229fb.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/ids.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libhbr_sim-850d535bfe8229fb.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/ids.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/ids.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
