/root/repo/target/release/deps/hbr_apps-a49af03503c0ac25.d: crates/apps/src/lib.rs crates/apps/src/generator.rs crates/apps/src/message.rs crates/apps/src/profile.rs crates/apps/src/server.rs

/root/repo/target/release/deps/libhbr_apps-a49af03503c0ac25.rlib: crates/apps/src/lib.rs crates/apps/src/generator.rs crates/apps/src/message.rs crates/apps/src/profile.rs crates/apps/src/server.rs

/root/repo/target/release/deps/libhbr_apps-a49af03503c0ac25.rmeta: crates/apps/src/lib.rs crates/apps/src/generator.rs crates/apps/src/message.rs crates/apps/src/profile.rs crates/apps/src/server.rs

crates/apps/src/lib.rs:
crates/apps/src/generator.rs:
crates/apps/src/message.rs:
crates/apps/src/profile.rs:
crates/apps/src/server.rs:
