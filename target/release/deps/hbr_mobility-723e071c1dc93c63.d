/root/repo/target/release/deps/hbr_mobility-723e071c1dc93c63.d: crates/mobility/src/lib.rs crates/mobility/src/field.rs crates/mobility/src/grid.rs crates/mobility/src/model.rs crates/mobility/src/position.rs crates/mobility/src/rssi.rs

/root/repo/target/release/deps/libhbr_mobility-723e071c1dc93c63.rlib: crates/mobility/src/lib.rs crates/mobility/src/field.rs crates/mobility/src/grid.rs crates/mobility/src/model.rs crates/mobility/src/position.rs crates/mobility/src/rssi.rs

/root/repo/target/release/deps/libhbr_mobility-723e071c1dc93c63.rmeta: crates/mobility/src/lib.rs crates/mobility/src/field.rs crates/mobility/src/grid.rs crates/mobility/src/model.rs crates/mobility/src/position.rs crates/mobility/src/rssi.rs

crates/mobility/src/lib.rs:
crates/mobility/src/field.rs:
crates/mobility/src/grid.rs:
crates/mobility/src/model.rs:
crates/mobility/src/position.rs:
crates/mobility/src/rssi.rs:
