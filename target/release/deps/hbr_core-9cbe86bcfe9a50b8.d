/root/repo/target/release/deps/hbr_core-9cbe86bcfe9a50b8.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/detector.rs crates/core/src/experiment.rs crates/core/src/feedback.rs crates/core/src/fleet.rs crates/core/src/incentive.rs crates/core/src/monitor.rs crates/core/src/scheduler.rs crates/core/src/world.rs

/root/repo/target/release/deps/libhbr_core-9cbe86bcfe9a50b8.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/detector.rs crates/core/src/experiment.rs crates/core/src/feedback.rs crates/core/src/fleet.rs crates/core/src/incentive.rs crates/core/src/monitor.rs crates/core/src/scheduler.rs crates/core/src/world.rs

/root/repo/target/release/deps/libhbr_core-9cbe86bcfe9a50b8.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/detector.rs crates/core/src/experiment.rs crates/core/src/feedback.rs crates/core/src/fleet.rs crates/core/src/incentive.rs crates/core/src/monitor.rs crates/core/src/scheduler.rs crates/core/src/world.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/detector.rs:
crates/core/src/experiment.rs:
crates/core/src/feedback.rs:
crates/core/src/fleet.rs:
crates/core/src/incentive.rs:
crates/core/src/monitor.rs:
crates/core/src/scheduler.rs:
crates/core/src/world.rs:
