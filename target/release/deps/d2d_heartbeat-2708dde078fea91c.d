/root/repo/target/release/deps/d2d_heartbeat-2708dde078fea91c.d: src/lib.rs

/root/repo/target/release/deps/libd2d_heartbeat-2708dde078fea91c.rlib: src/lib.rs

/root/repo/target/release/deps/libd2d_heartbeat-2708dde078fea91c.rmeta: src/lib.rs

src/lib.rs:
