/root/repo/target/release/deps/exp_periodic_classes-a38185c4084522c1.d: crates/bench/src/bin/exp_periodic_classes.rs

/root/repo/target/release/deps/exp_periodic_classes-a38185c4084522c1: crates/bench/src/bin/exp_periodic_classes.rs

crates/bench/src/bin/exp_periodic_classes.rs:
