/root/repo/target/release/deps/ablation_expiry-bd7cf22733952c30.d: crates/bench/src/bin/ablation_expiry.rs

/root/repo/target/release/deps/ablation_expiry-bd7cf22733952c30: crates/bench/src/bin/ablation_expiry.rs

crates/bench/src/bin/ablation_expiry.rs:
