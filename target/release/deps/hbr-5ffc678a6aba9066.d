/root/repo/target/release/deps/hbr-5ffc678a6aba9066.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/hbr-5ffc678a6aba9066: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
