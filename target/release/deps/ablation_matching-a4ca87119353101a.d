/root/repo/target/release/deps/ablation_matching-a4ca87119353101a.d: crates/bench/src/bin/ablation_matching.rs

/root/repo/target/release/deps/ablation_matching-a4ca87119353101a: crates/bench/src/bin/ablation_matching.rs

crates/bench/src/bin/ablation_matching.rs:
