/root/repo/target/release/deps/hbr_cellular-c9b8010798bebdfd.d: crates/cellular/src/lib.rs crates/cellular/src/bs.rs crates/cellular/src/config.rs crates/cellular/src/l3.rs crates/cellular/src/radio.rs

/root/repo/target/release/deps/libhbr_cellular-c9b8010798bebdfd.rlib: crates/cellular/src/lib.rs crates/cellular/src/bs.rs crates/cellular/src/config.rs crates/cellular/src/l3.rs crates/cellular/src/radio.rs

/root/repo/target/release/deps/libhbr_cellular-c9b8010798bebdfd.rmeta: crates/cellular/src/lib.rs crates/cellular/src/bs.rs crates/cellular/src/config.rs crates/cellular/src/l3.rs crates/cellular/src/radio.rs

crates/cellular/src/lib.rs:
crates/cellular/src/bs.rs:
crates/cellular/src/config.rs:
crates/cellular/src/l3.rs:
crates/cellular/src/radio.rs:
