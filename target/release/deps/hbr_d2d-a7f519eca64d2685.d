/root/repo/target/release/deps/hbr_d2d-a7f519eca64d2685.d: crates/d2d/src/lib.rs crates/d2d/src/group.rs crates/d2d/src/group_net.rs crates/d2d/src/link.rs crates/d2d/src/tech.rs

/root/repo/target/release/deps/libhbr_d2d-a7f519eca64d2685.rlib: crates/d2d/src/lib.rs crates/d2d/src/group.rs crates/d2d/src/group_net.rs crates/d2d/src/link.rs crates/d2d/src/tech.rs

/root/repo/target/release/deps/libhbr_d2d-a7f519eca64d2685.rmeta: crates/d2d/src/lib.rs crates/d2d/src/group.rs crates/d2d/src/group_net.rs crates/d2d/src/link.rs crates/d2d/src/tech.rs

crates/d2d/src/lib.rs:
crates/d2d/src/group.rs:
crates/d2d/src/group_net.rs:
crates/d2d/src/link.rs:
crates/d2d/src/tech.rs:
