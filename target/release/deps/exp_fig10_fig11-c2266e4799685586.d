/root/repo/target/release/deps/exp_fig10_fig11-c2266e4799685586.d: crates/bench/src/bin/exp_fig10_fig11.rs

/root/repo/target/release/deps/exp_fig10_fig11-c2266e4799685586: crates/bench/src/bin/exp_fig10_fig11.rs

crates/bench/src/bin/exp_fig10_fig11.rs:
