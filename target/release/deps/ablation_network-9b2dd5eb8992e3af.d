/root/repo/target/release/deps/ablation_network-9b2dd5eb8992e3af.d: crates/bench/src/bin/ablation_network.rs

/root/repo/target/release/deps/ablation_network-9b2dd5eb8992e3af: crates/bench/src/bin/ablation_network.rs

crates/bench/src/bin/ablation_network.rs:
