/root/repo/target/release/deps/hbr_bench-62d6ad6a4060a27c.d: crates/bench/src/lib.rs crates/bench/src/sweep.rs

/root/repo/target/release/deps/libhbr_bench-62d6ad6a4060a27c.rlib: crates/bench/src/lib.rs crates/bench/src/sweep.rs

/root/repo/target/release/deps/libhbr_bench-62d6ad6a4060a27c.rmeta: crates/bench/src/lib.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/sweep.rs:
