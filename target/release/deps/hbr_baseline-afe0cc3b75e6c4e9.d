/root/repo/target/release/deps/hbr_baseline-afe0cc3b75e6c4e9.d: crates/baseline/src/lib.rs crates/baseline/src/strategy.rs

/root/repo/target/release/deps/libhbr_baseline-afe0cc3b75e6c4e9.rlib: crates/baseline/src/lib.rs crates/baseline/src/strategy.rs

/root/repo/target/release/deps/libhbr_baseline-afe0cc3b75e6c4e9.rmeta: crates/baseline/src/lib.rs crates/baseline/src/strategy.rs

crates/baseline/src/lib.rs:
crates/baseline/src/strategy.rs:
