/root/repo/target/release/deps/exp_fig6_fig7-a6616dbd97e59fe0.d: crates/bench/src/bin/exp_fig6_fig7.rs

/root/repo/target/release/deps/exp_fig6_fig7-a6616dbd97e59fe0: crates/bench/src/bin/exp_fig6_fig7.rs

crates/bench/src/bin/exp_fig6_fig7.rs:
