/root/repo/target/release/deps/exp_table1-c9fd5b42dd7bd25a.d: crates/bench/src/bin/exp_table1.rs

/root/repo/target/release/deps/exp_table1-c9fd5b42dd7bd25a: crates/bench/src/bin/exp_table1.rs

crates/bench/src/bin/exp_table1.rs:
