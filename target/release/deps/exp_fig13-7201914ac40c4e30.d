/root/repo/target/release/deps/exp_fig13-7201914ac40c4e30.d: crates/bench/src/bin/exp_fig13.rs

/root/repo/target/release/deps/exp_fig13-7201914ac40c4e30: crates/bench/src/bin/exp_fig13.rs

crates/bench/src/bin/exp_fig13.rs:
