/root/repo/target/release/deps/ablation_d2d_tech-cff5964606d340f6.d: crates/bench/src/bin/ablation_d2d_tech.rs

/root/repo/target/release/deps/ablation_d2d_tech-cff5964606d340f6: crates/bench/src/bin/ablation_d2d_tech.rs

crates/bench/src/bin/ablation_d2d_tech.rs:
