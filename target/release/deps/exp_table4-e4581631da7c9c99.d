/root/repo/target/release/deps/exp_table4-e4581631da7c9c99.d: crates/bench/src/bin/exp_table4.rs

/root/repo/target/release/deps/exp_table4-e4581631da7c9c99: crates/bench/src/bin/exp_table4.rs

crates/bench/src/bin/exp_table4.rs:
