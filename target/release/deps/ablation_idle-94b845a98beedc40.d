/root/repo/target/release/deps/ablation_idle-94b845a98beedc40.d: crates/bench/src/bin/ablation_idle.rs

/root/repo/target/release/deps/ablation_idle-94b845a98beedc40: crates/bench/src/bin/ablation_idle.rs

crates/bench/src/bin/ablation_idle.rs:
