/root/repo/target/release/deps/exp_fig12-97a36d54fa98f0e0.d: crates/bench/src/bin/exp_fig12.rs

/root/repo/target/release/deps/exp_fig12-97a36d54fa98f0e0: crates/bench/src/bin/exp_fig12.rs

crates/bench/src/bin/exp_fig12.rs:
