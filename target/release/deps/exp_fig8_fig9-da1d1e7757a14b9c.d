/root/repo/target/release/deps/exp_fig8_fig9-da1d1e7757a14b9c.d: crates/bench/src/bin/exp_fig8_fig9.rs

/root/repo/target/release/deps/exp_fig8_fig9-da1d1e7757a14b9c: crates/bench/src/bin/exp_fig8_fig9.rs

crates/bench/src/bin/exp_fig8_fig9.rs:
