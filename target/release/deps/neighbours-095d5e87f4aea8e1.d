/root/repo/target/release/deps/neighbours-095d5e87f4aea8e1.d: crates/bench/benches/neighbours.rs

/root/repo/target/release/deps/neighbours-095d5e87f4aea8e1: crates/bench/benches/neighbours.rs

crates/bench/benches/neighbours.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
