//! Offline mini-criterion.
//!
//! A dependency-free benchmark harness exposing the `criterion` API
//! subset this workspace's benches use: [`Criterion`],
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkId`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros. The build container has no network, so
//! the real crate cannot be fetched.
//!
//! Measurement model: each benchmark is warmed up for ~0.2 s, then
//! timed over enough iterations to fill ~1 s of wall clock, in several
//! batches; the per-iteration mean, minimum and maximum batch averages
//! are printed. Statistical machinery (outlier analysis, HTML reports)
//! is intentionally absent — the numbers are honest wall-clock means,
//! which is what the perf-tracking JSON artifacts consume.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Opaque identity function preventing the optimizer from deleting a
/// value (same contract as `criterion::black_box`).
#[inline]
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id labelled `function_id/parameter`.
    pub fn new(function_id: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.id.fmt(f)
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    /// Mean seconds per iteration, filled by [`Bencher::iter`].
    mean_secs: f64,
    min_secs: f64,
    max_secs: f64,
    warm_up: Duration,
    measurement: Duration,
}

impl Bencher {
    /// Times `routine`, storing per-iteration statistics.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also discovers how long one iteration takes.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Split the measurement budget into batches for min/max spread.
        const BATCHES: usize = 5;
        let budget = self.measurement.as_secs_f64();
        let iters_per_batch = ((budget / BATCHES as f64) / per_iter.max(1e-9))
            .ceil()
            .max(1.0) as u64;

        let mut batch_means = Vec::with_capacity(BATCHES);
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(routine());
            }
            batch_means.push(start.elapsed().as_secs_f64() / iters_per_batch as f64);
        }
        self.mean_secs = batch_means.iter().sum::<f64>() / batch_means.len() as f64;
        self.min_secs = batch_means.iter().copied().fold(f64::INFINITY, f64::min);
        self.max_secs = batch_means.iter().copied().fold(0.0, f64::max);
    }
}

fn format_secs(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// The benchmark driver.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    /// Sets the measurement time budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the warm-up time budget.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Accepted for API compatibility; this harness sizes batches by
    /// time, not sample count.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, id: &str, mut f: F) -> f64 {
        let mut bencher = Bencher {
            mean_secs: 0.0,
            min_secs: 0.0,
            max_secs: 0.0,
            warm_up: self.warm_up,
            measurement: self.measurement,
        };
        f(&mut bencher);
        println!(
            "{id:<50} time: [{} {} {}]",
            format_secs(bencher.min_secs),
            format_secs(bencher.mean_secs),
            format_secs(bencher.max_secs),
        );
        bencher.mean_secs
    }

    /// Benchmarks one routine.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, f);
        self
    }

    /// Benchmarks `f` with an input value under `group/id`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Accepted for API compatibility.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
    }

    #[test]
    fn bench_function_measures_something() {
        let mut c = quick();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = quick();
        let mut group = c.benchmark_group("demo");
        for &n in &[1usize, 2] {
            group.bench_with_input(BenchmarkId::new("sum", n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<usize>())
            });
        }
        group.finish();
        assert_eq!(BenchmarkId::new("sum", 4).to_string(), "sum/4");
    }
}
