//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public model
//! types as forward-looking decoration, but nothing serializes yet (no
//! `serde_json` dependency, no trait bounds anywhere). With no network in
//! the build container, this stub supplies the two marker traits and
//! re-exports no-op derive macros so the `#[derive(...)]` attributes keep
//! compiling. The day real serialization lands, replace this with the
//! actual `serde` by restoring the crates.io dependency.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that (will) support serialization.
pub trait Serialize {}

/// Marker for types that (will) support deserialization.
pub trait Deserialize<'de> {}

/// Marker for owned-deserializable types.
pub trait DeserializeOwned {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}
