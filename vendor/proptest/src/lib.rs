//! Offline mini-proptest.
//!
//! A self-contained property-testing harness implementing the `proptest`
//! API subset this workspace's test suites use: the [`proptest!`],
//! [`prop_compose!`], [`prop_assert!`] and [`prop_assert_eq!`] macros,
//! [`strategy::Strategy`] with range / tuple / `prop_map` combinators,
//! [`collection::vec`], [`sample::select`], [`arbitrary::any`] and
//! [`test_runner::ProptestConfig`]. The build container has no network
//! access, so the real crate cannot be fetched; this stand-in keeps the
//! same test sources compiling and meaningfully exercising the code.
//!
//! Differences from upstream: no shrinking (a failing case panics with
//! its case index so it can be replayed — case streams are fixed across
//! runs), and the default case count is 64 rather than 256.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of `Value` from a deterministic RNG.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy wrapping a sampling closure (used by `prop_compose!`).
    pub struct FnStrategy<T, F: Fn(&mut TestRng) -> T> {
        f: F,
    }

    impl<T, F: Fn(&mut TestRng) -> T> FnStrategy<T, F> {
        /// Wraps `f` as a strategy.
        pub fn new(f: F) -> Self {
            FnStrategy { f }
        }
    }

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<T, F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    // Strategies are sampled through shared references in combinators, so
    // forwarding impls keep `&S` usable wherever `S` is.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.uniform_u64((self.start as i128) as i128, self.end as i128 - 1) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.uniform_u64(*self.start() as i128, *self.end() as i128) as $t
                }
            }
        )+};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let v = self.start + (self.end - self.start) * rng.unit() as $t;
                    if v >= self.end { self.start } else { v }
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    self.start() + (self.end() - self.start()) * rng.unit() as $t
                }
            }
        )+};
    }

    float_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

pub mod test_runner {
    //! Deterministic case generation and configuration.

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// The harness RNG: splitmix64-seeded xorshift-multiply stream, one
    /// independent stream per case index so failures replay exactly.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed stream for case number `case`.
        pub fn for_case(case: u32) -> Self {
            TestRng {
                state: 0xD2D_5EED_0BAD_CAFE ^ ((case as u64) << 1),
            }
        }

        /// Next 64 random bits (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[low, high]` (inclusive, i128 domain so
        /// every primitive integer fits).
        pub fn uniform_u64(&mut self, low: i128, high: i128) -> i128 {
            assert!(low <= high, "empty strategy range");
            let span = (high - low) as u128 + 1;
            if span == 0 {
                return self.next_u64() as i128;
            }
            let draw = ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % span;
            low + draw as i128
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary_sample(rng: &mut TestRng) -> Self;
    }

    /// Strategy over every value of `T`.
    #[derive(Debug, Clone, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_sample(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! arb_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_sample(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_sample(rng: &mut TestRng) -> Self {
            rng.unit()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Element-count specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        low: usize,
        high_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                low: n,
                high_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                low: r.start,
                high_inclusive: r.end - 1,
            }
        }
    }

    /// Strategy for vectors of `element` values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n =
                rng.uniform_u64(self.size.low as i128, self.size.high_inclusive as i128) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `proptest::collection::vec(strategy, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    //! Sampling from explicit value sets.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly among fixed values.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.uniform_u64(0, self.items.len() as i128 - 1) as usize;
            self.items[idx].clone()
        }
    }

    /// `prop::sample::select(values)`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select requires at least one item");
        Select { items }
    }
}

pub mod prelude {
    //! Glob-import surface matching upstream's `proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, proptest,
    };

    /// Module alias mirroring upstream's `prop` re-export.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Defines property tests: each `fn` runs its body over many sampled
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    let __run = || -> () { $body };
                    __run();
                }
            }
        )*
    };
}

/// Composes argument strategies into a derived-value strategy.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($outer:tt)*)($($arg:pat in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy::new(
                move |__rng: &mut $crate::test_runner::TestRng| -> $ret {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                    $body
                },
            )
        }
    };
}

/// Property assertion (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when its precondition fails. Upstream resamples;
/// this mini-harness simply returns from the case, which is sound because
/// every case is independent.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    proptest! {
        #[test]
        fn ranges_hold(x in 3u64..10, f in -1.0f64..1.0, b in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            let _ = b;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn vec_sizes_hold(v in crate::collection::vec(0u8..4, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 4));
        }
    }

    prop_compose! {
        fn arb_pair()(a in 0u32..5, b in 10u32..15) -> (u32, u32) {
            (a, b)
        }
    }

    #[test]
    fn composed_and_mapped_strategies() {
        let mut rng = TestRng::for_case(0);
        let s = arb_pair().prop_map(|(a, b)| a + b);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn select_picks_members() {
        let mut rng = TestRng::for_case(1);
        let s = crate::sample::select(vec!['a', 'b', 'c']);
        for _ in 0..50 {
            assert!(['a', 'b', 'c'].contains(&s.sample(&mut rng)));
        }
    }

    #[test]
    fn cases_are_reproducible() {
        let mut a = TestRng::for_case(7);
        let mut b = TestRng::for_case(7);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
