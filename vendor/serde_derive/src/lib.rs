//! No-op derive macros for the offline `serde` stub.
//!
//! The derives intentionally emit nothing: no code in the workspace
//! requires `Serialize`/`Deserialize` impls yet, so an empty expansion
//! keeps every `#[derive(Serialize, Deserialize)]` site compiling with
//! zero parsing risk.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
