//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no network access, so the
//! real `rand` cannot be fetched from crates.io. This crate implements
//! exactly the API subset the workspace consumes (see
//! `crates/sim/src/rng.rs`): [`rngs::StdRng`], the [`Rng`], [`RngCore`]
//! and [`SeedableRng`] traits, and uniform range sampling. The generator
//! behind `StdRng` is xoshiro256++ seeded through splitmix64 — fast,
//! high-quality and fully deterministic, though its stream differs from
//! upstream `rand`'s ChaCha12 (nothing in the workspace depends on the
//! upstream stream).

use std::fmt;

/// Error type mirroring `rand::Error` (never produced by this stub).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rand stub error")
    }
}

impl std::error::Error for Error {}

/// Core trait: a source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible fill (infallible here).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a 64-bit seed (splitmix64 expansion).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Convenience sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        assert!(!range.is_empty(), "cannot sample empty range");
        range.sample_single(self)
    }

    /// Bernoulli trial.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the standard (uniform) distribution.
pub trait Standard: Sized {
    /// Draws one standard sample from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub mod distributions {
    //! Distribution machinery (uniform ranges only).

    pub mod uniform {
        //! Uniform sampling over ranges, mirroring `rand 0.8`'s traits.

        use super::super::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// Types with a uniform sampler.
        pub trait SampleUniform: Sized + PartialOrd {
            /// Uniform sample from `[low, high)`.
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
            /// Uniform sample from `[low, high]`.
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
        }

        /// Range types usable with [`Rng::gen_range`](crate::Rng::gen_range).
        pub trait SampleRange<T> {
            /// Draws one sample.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
            /// `true` if no value can be drawn.
            fn is_empty(&self) -> bool;
        }

        impl<T: SampleUniform> SampleRange<T> for Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_half_open(rng, self.start, self.end)
            }
            fn is_empty(&self) -> bool {
                matches!(
                    self.start.partial_cmp(&self.end),
                    None | Some(core::cmp::Ordering::Greater) | Some(core::cmp::Ordering::Equal)
                )
            }
        }

        impl<T: SampleUniform + Clone> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                let (low, high) = self.into_inner();
                T::sample_closed(rng, low, high)
            }
            fn is_empty(&self) -> bool {
                matches!(
                    self.start().partial_cmp(self.end()),
                    None | Some(core::cmp::Ordering::Greater)
                )
            }
        }

        /// Unbiased integer in `[0, bound)` via Lemire's method.
        fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
            if bound == 0 {
                return rng.next_u64();
            }
            loop {
                let x = rng.next_u64();
                let m = (x as u128) * (bound as u128);
                let low = m as u64;
                if low >= bound || low >= (bound.wrapping_neg() % bound) {
                    return (m >> 64) as u64;
                }
            }
        }

        macro_rules! impl_uniform_int {
            ($($t:ty => $wide:ty),+ $(,)?) => {$(
                impl SampleUniform for $t {
                    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                        let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                        (low as $wide).wrapping_add(bounded_u64(rng, span) as $wide) as $t
                    }
                    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                        let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                        if span == u64::MAX {
                            return rng.next_u64() as $t;
                        }
                        (low as $wide).wrapping_add(bounded_u64(rng, span + 1) as $wide) as $t
                    }
                }
            )+};
        }

        impl_uniform_int!(
            u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
            i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
        );

        macro_rules! impl_uniform_float {
            ($($t:ty),+) => {$(
                impl SampleUniform for $t {
                    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                        let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                        let v = low + (high - low) * unit;
                        // Guard against rounding up to the open bound.
                        if v >= high { low } else { v }
                    }
                    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                        let unit = (rng.next_u64() >> 11) as $t * (1.0 / ((1u64 << 53) - 1) as $t);
                        low + (high - low) * unit
                    }
                }
            )+};
        }

        impl_uniform_float!(f32, f64);
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.step().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }
}

// The prelude `rand` users commonly glob-import.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::distributions::uniform::SampleUniform;
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let inc: u64 = rng.gen_range(0..=5);
            assert!(inc <= 5);
        }
    }

    #[test]
    fn unit_floats_are_uniformish() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn closed_integer_covers_full_domain() {
        let mut rng = StdRng::seed_from_u64(5);
        // Must not hang or panic on the maximal span.
        let _ = u64::sample_closed(&mut rng, 0, u64::MAX);
    }
}
