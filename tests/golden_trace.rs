//! Golden-trace regression: a fixed-seed faulted scenario is
//! byte-reproducible — identical rendered report and identical trace —
//! across runs *and* across sweep thread counts, pinned to committed
//! hashes.
//!
//! If an intentional engine change shifts the trace, re-run with
//! `HBR_PRINT_GOLDEN=1 cargo test --test golden_trace -- --nocapture`
//! and update the constants below.

use d2d_heartbeat::apps::AppProfile;
use d2d_heartbeat::bench::run_sweep_with_threads;
use d2d_heartbeat::core::world::{DeviceSpec, Mode, Role, Scenario, ScenarioConfig};
use d2d_heartbeat::mobility::{Mobility, Position};
use d2d_heartbeat::sim::fault::FaultKind;
use d2d_heartbeat::sim::{DeviceId, SimDuration, SimTime};

/// FNV-1a over the rendered output — dependency-free and stable.
fn fnv1a(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

/// The committed fingerprint of the faulted sweep below. The golden
/// value covers every point's rendered report and full trace text.
const GOLDEN_HASH: u64 = 0x8157_42d1_19d0_17d5;

fn faulted_point(seed: u64) -> String {
    let mut config = ScenarioConfig::new(SimDuration::from_secs(2 * 3600), seed);
    config.mode = Mode::D2dFramework;
    config.trace_capacity = 50_000;
    // Exercise every fault kind in one run.
    config.faults.schedule(
        SimTime::from_secs(700),
        FaultKind::LinkDegrade {
            device: DeviceId::new(1),
            extra_loss: 0.9,
            duration: SimDuration::from_secs(400),
        },
    );
    config.faults.schedule(
        SimTime::from_secs(1000),
        FaultKind::LinkDrop {
            device: DeviceId::new(2),
            d2d_down_for: SimDuration::from_secs(600),
        },
    );
    config.faults.schedule(
        SimTime::from_secs(1800),
        FaultKind::CellularOutage {
            duration: SimDuration::from_secs(450),
        },
    );
    config.faults.schedule(
        SimTime::from_secs(3000),
        FaultKind::DiscoveryBlackout {
            duration: SimDuration::from_secs(300),
        },
    );
    config.faults.schedule(
        SimTime::from_secs(4000),
        FaultKind::RelayDeparture {
            device: DeviceId::new(0),
            rejoin_after: Some(SimDuration::from_secs(900)),
        },
    );
    config.faults.schedule(
        SimTime::from_secs(6000),
        FaultKind::PayloadLoss {
            device: DeviceId::new(3),
            probability: 0.7,
            duration: SimDuration::from_secs(500),
        },
    );
    config.add_device(spec(Role::Relay, 0.0));
    for x in 1..=4 {
        config.add_device(spec(Role::Ue, x as f64));
    }
    let report = Scenario::new(config).run();
    let mut out = report.render();
    out.push('\n');
    for entry in &report.trace {
        out.push_str(&entry.to_string());
        out.push('\n');
    }
    out
}

fn spec(role: Role, x: f64) -> DeviceSpec {
    DeviceSpec {
        role,
        apps: vec![AppProfile::wechat()],
        mobility: Mobility::stationary(Position::new(x, 0.0)),
        battery_mah: None,
    }
}

fn sweep(threads: usize) -> String {
    let points: Vec<u64> = vec![97, 98, 99, 100];
    run_sweep_with_threads(threads, 97, points, |&seed, _| faulted_point(seed)).join("\n===\n")
}

#[test]
fn faulted_sweep_is_byte_reproducible_across_thread_counts() {
    let single = sweep(1);
    let parallel = sweep(4);
    assert_eq!(
        single, parallel,
        "the faulted sweep depends on scheduling — determinism broken"
    );
    if std::env::var("HBR_PRINT_GOLDEN").is_ok() {
        println!("golden hash: {:#018x}", fnv1a(&single));
    }
    assert_eq!(
        fnv1a(&single),
        GOLDEN_HASH,
        "the faulted golden trace drifted; if the engine change is \
         intentional, re-run with HBR_PRINT_GOLDEN=1 and update GOLDEN_HASH"
    );
}

#[test]
fn repeated_runs_are_identical() {
    assert_eq!(faulted_point(97), faulted_point(97));
}
