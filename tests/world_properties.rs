//! Property tests over randomly generated scenario worlds: whatever the
//! topology, apps, batteries and seed, the framework's safety invariants
//! hold.

use d2d_heartbeat::apps::AppProfile;
use d2d_heartbeat::bench::{run_crowd, CrowdConfig};
use d2d_heartbeat::core::world::{
    DeviceSpec, Mode, Role, Scenario, ScenarioConfig, ScenarioReport,
};
use d2d_heartbeat::energy::PhaseGroup;
use d2d_heartbeat::mobility::{Mobility, Position};
use d2d_heartbeat::sim::fault::{FaultKind, FaultPlan};
use d2d_heartbeat::sim::{DeviceId, SimDuration, SimTime};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomWorld {
    seed: u64,
    relays: usize,
    ues: usize,
    positions: Vec<(f64, f64)>,
    app_picks: Vec<u8>,
    dead_relay: bool,
}

fn arb_world() -> impl Strategy<Value = RandomWorld> {
    (
        any::<u64>(),
        1usize..3,
        1usize..5,
        proptest::collection::vec((0.0f64..25.0, 0.0f64..25.0), 8),
        proptest::collection::vec(0u8..3, 8),
        any::<bool>(),
    )
        .prop_map(
            |(seed, relays, ues, positions, app_picks, dead_relay)| RandomWorld {
                seed,
                relays,
                ues,
                positions,
                app_picks,
                dead_relay,
            },
        )
}

fn build(world: &RandomWorld, mode: Mode) -> ScenarioReport {
    let mut config = ScenarioConfig::new(SimDuration::from_secs(2 * 3600), world.seed);
    config.mode = mode;
    let apps = [
        AppProfile::wechat(),
        AppProfile::whatsapp(),
        AppProfile::qq(),
    ];
    for i in 0..(world.relays + world.ues) {
        let (x, y) = world.positions[i % world.positions.len()];
        let role = if i < world.relays {
            Role::Relay
        } else {
            Role::Ue
        };
        let app = apps[world.app_picks[i % world.app_picks.len()] as usize].clone();
        let battery = if world.dead_relay && i == 0 {
            Some(2.0)
        } else {
            None
        };
        config.add_device(DeviceSpec {
            role,
            apps: vec![app],
            mobility: Mobility::stationary(Position::new(x, y)),
            battery_mah: battery,
        });
    }
    Scenario::new(config).run()
}

/// One entry of an arbitrary fault plan, pre-normalisation: the kind
/// selector and raw knobs are generated, the device index is folded
/// into range when the plan is built.
#[derive(Debug, Clone)]
struct FaultSpec {
    kind: u8,
    at: u64,
    dur: u64,
    dev: u32,
    prob: f64,
}

fn arb_fault_specs() -> impl Strategy<Value = Vec<FaultSpec>> {
    proptest::collection::vec(
        (0u8..6, 0u64..5400, 30u64..900, any::<u32>(), 0.0f64..=1.0).prop_map(
            |(kind, at, dur, dev, prob)| FaultSpec {
                kind,
                at,
                dur,
                dev,
                prob,
            },
        ),
        0..4,
    )
}

fn plan_from(specs: &[FaultSpec], phones: usize) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for s in specs {
        let device = DeviceId::new(s.dev % phones as u32);
        let duration = SimDuration::from_secs(s.dur);
        let kind = match s.kind {
            0 => FaultKind::CellularOutage { duration },
            1 => FaultKind::DiscoveryBlackout { duration },
            2 => FaultKind::LinkDrop {
                device,
                d2d_down_for: duration,
            },
            3 => FaultKind::RelayDeparture {
                device,
                rejoin_after: (s.dur % 2 == 0).then_some(duration),
            },
            4 => FaultKind::LinkDegrade {
                device,
                extra_loss: s.prob,
                duration,
            },
            _ => FaultKind::PayloadLoss {
                device,
                probability: s.prob,
                duration,
            },
        };
        plan.schedule(SimTime::from_secs(s.at), kind);
    }
    plan
}

fn build_reliable(world: &RandomWorld, specs: &[FaultSpec]) -> ScenarioReport {
    let mut config = ScenarioConfig::new(SimDuration::from_secs(2 * 3600), world.seed);
    config.mode = Mode::D2dFramework;
    config.reliable_delivery = true;
    config.faults = plan_from(specs, world.relays + world.ues);
    let apps = [
        AppProfile::wechat(),
        AppProfile::whatsapp(),
        AppProfile::qq(),
    ];
    for i in 0..(world.relays + world.ues) {
        let (x, y) = world.positions[i % world.positions.len()];
        let role = if i < world.relays {
            Role::Relay
        } else {
            Role::Ue
        };
        let app = apps[world.app_picks[i % world.app_picks.len()] as usize].clone();
        let battery = if world.dead_relay && i == 0 {
            Some(2.0)
        } else {
            None
        };
        config.add_device(DeviceSpec {
            role,
            apps: vec![app],
            mobility: Mobility::stationary(Position::new(x, y)),
            battery_mah: battery,
        });
    }
    Scenario::new(config).run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Presence of battery-healthy devices never lapses, nothing expires,
    /// and nothing is delivered twice — under any topology.
    #[test]
    fn framework_safety_invariants(world in arb_world()) {
        let report = build(&world, Mode::D2dFramework);
        prop_assert_eq!(report.rejected_expired, 0);
        prop_assert_eq!(report.duplicates, 0);
        for dev in &report.devices {
            if !dev.battery_depleted {
                prop_assert!(
                    dev.offline_secs == 0.0,
                    "{} offline {}s", dev.device, dev.offline_secs
                );
            }
        }
    }

    /// The framework never emits more layer-3 traffic than the original
    /// system on the same workload.
    #[test]
    fn framework_never_worse_on_signaling(world in arb_world()) {
        let fw = build(&world, Mode::D2dFramework);
        let base = build(&world, Mode::OriginalCellular);
        prop_assert!(
            fw.total_l3 <= base.total_l3,
            "{} vs {}", fw.total_l3, base.total_l3
        );
        prop_assert!(fw.total_rrc <= base.total_rrc);
    }

    /// Determinism: the same random world runs to identical reports.
    #[test]
    fn worlds_are_deterministic(world in arb_world()) {
        let a = build(&world, Mode::D2dFramework);
        let b = build(&world, Mode::D2dFramework);
        prop_assert_eq!(a.total_l3, b.total_l3);
        prop_assert_eq!(a.delivered, b.delivered);
        prop_assert!((a.total_energy_uah - b.total_energy_uah).abs() < 1e-9);
    }

    /// Conservation: every UE heartbeat is accounted for — forwarded and
    /// confirmed, rescued by fallback, or still in flight at the horizon.
    #[test]
    fn heartbeats_are_conserved(world in arb_world()) {
        let report = build(&world, Mode::D2dFramework);
        // Delivered = all device heartbeats minus in-flight remainder;
        // it can never exceed what was generated.
        let generated_upper: u64 = report
            .devices
            .iter()
            .map(|_| (2 * 3600 / 240) as u64 + 2) // fastest app period 240 s
            .sum();
        prop_assert!(report.delivered <= generated_upper);
        prop_assert!(report.delivered > 0);
        // Rewards = forwards that made it into a flush; never exceeds
        // collected totals.
        for dev in &report.devices {
            if dev.role == Role::Relay {
                prop_assert!(dev.rewards <= dev.forwards);
            }
        }
    }

    /// Under an arbitrary fault plan, every heartbeat the reliable
    /// ledger tracked ends in exactly one terminal state: delivered
    /// once, expired-and-accounted, died with its source, or still in
    /// flight at the horizon. Nothing is lost, nothing counted twice.
    #[test]
    fn reliable_ledger_ends_in_exactly_one_terminal_state(
        world in arb_world(),
        specs in arb_fault_specs(),
    ) {
        let report = build_reliable(&world, &specs);
        let d = report.delivery.as_ref().expect("reliable run");
        prop_assert_eq!(
            d.delivered + d.expired + d.dropped_dead + d.in_flight,
            d.generated,
            "ledger must balance: {:?}", d
        );
        prop_assert!(d.ratio() <= 1.0 + 1e-12);
        prop_assert!(d.false_dead_secs >= 0.0);
        // Retries and handovers are bounded by the backoff policy:
        // at most max_attempts per generated heartbeat.
        prop_assert!(d.retries <= 3 * d.generated);
        // And the run is deterministic, ledger included.
        let again = build_reliable(&world, &specs);
        prop_assert_eq!(report.render(), again.render());
    }

    /// Baseline worlds never report any D2D energy.
    #[test]
    fn baseline_is_pure_cellular(world in arb_world()) {
        let report = build(&world, Mode::OriginalCellular);
        for dev in &report.devices {
            for (group, energy) in &dev.energy_by_group {
                prop_assert!(
                    !matches!(
                        group,
                        PhaseGroup::Discovery | PhaseGroup::Connection | PhaseGroup::Forwarding
                    ) || *energy == 0.0
                );
            }
        }
    }
}

proptest! {
    // Each case runs two full crowd engines; keep the count small.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The reliable-delivery crowd run is byte-identical at 1 and 4
    /// worker threads under an arbitrary fault plan — render, metrics,
    /// event stream and the delivery ledger alike.
    #[test]
    fn reliable_crowd_is_thread_count_invariant(
        seed in any::<u64>(),
        phones in 12usize..32,
        relays in 1usize..5,
        specs in arb_fault_specs(),
    ) {
        let crowd = |shards: usize| {
            run_crowd(&CrowdConfig {
                phones,
                relays,
                hours: 1,
                area_side_m: 220.0,
                seed,
                push_mins: 0,
                mode: Mode::D2dFramework,
                faults: plan_from(&specs, phones),
                trace_capacity: 0,
                telemetry: true,
                reliable: true,
                shards: Some(shards),
            })
        };
        let one = crowd(1);
        let four = crowd(4);
        prop_assert_eq!(one.render(), four.render());
        prop_assert_eq!(one.metrics.to_json(), four.metrics.to_json());
        let lines = |r: &ScenarioReport| {
            r.events.iter().map(|e| e.to_jsonl()).collect::<Vec<_>>().join("\n")
        };
        prop_assert_eq!(lines(&one), lines(&four));
        let d1 = one.delivery.as_ref().expect("reliable crowd run");
        let d4 = four.delivery.as_ref().expect("reliable crowd run");
        prop_assert_eq!(format!("{d1:?}"), format!("{d4:?}"));
        prop_assert_eq!(
            d1.delivered + d1.expired + d1.dropped_dead + d1.in_flight,
            d1.generated
        );
    }
}
