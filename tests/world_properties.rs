//! Property tests over randomly generated scenario worlds: whatever the
//! topology, apps, batteries and seed, the framework's safety invariants
//! hold.

use d2d_heartbeat::apps::AppProfile;
use d2d_heartbeat::core::world::{
    DeviceSpec, Mode, Role, Scenario, ScenarioConfig, ScenarioReport,
};
use d2d_heartbeat::energy::PhaseGroup;
use d2d_heartbeat::mobility::{Mobility, Position};
use d2d_heartbeat::sim::SimDuration;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomWorld {
    seed: u64,
    relays: usize,
    ues: usize,
    positions: Vec<(f64, f64)>,
    app_picks: Vec<u8>,
    dead_relay: bool,
}

fn arb_world() -> impl Strategy<Value = RandomWorld> {
    (
        any::<u64>(),
        1usize..3,
        1usize..5,
        proptest::collection::vec((0.0f64..25.0, 0.0f64..25.0), 8),
        proptest::collection::vec(0u8..3, 8),
        any::<bool>(),
    )
        .prop_map(
            |(seed, relays, ues, positions, app_picks, dead_relay)| RandomWorld {
                seed,
                relays,
                ues,
                positions,
                app_picks,
                dead_relay,
            },
        )
}

fn build(world: &RandomWorld, mode: Mode) -> ScenarioReport {
    let mut config = ScenarioConfig::new(SimDuration::from_secs(2 * 3600), world.seed);
    config.mode = mode;
    let apps = [
        AppProfile::wechat(),
        AppProfile::whatsapp(),
        AppProfile::qq(),
    ];
    for i in 0..(world.relays + world.ues) {
        let (x, y) = world.positions[i % world.positions.len()];
        let role = if i < world.relays {
            Role::Relay
        } else {
            Role::Ue
        };
        let app = apps[world.app_picks[i % world.app_picks.len()] as usize].clone();
        let battery = if world.dead_relay && i == 0 {
            Some(2.0)
        } else {
            None
        };
        config.add_device(DeviceSpec {
            role,
            apps: vec![app],
            mobility: Mobility::stationary(Position::new(x, y)),
            battery_mah: battery,
        });
    }
    Scenario::new(config).run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Presence of battery-healthy devices never lapses, nothing expires,
    /// and nothing is delivered twice — under any topology.
    #[test]
    fn framework_safety_invariants(world in arb_world()) {
        let report = build(&world, Mode::D2dFramework);
        prop_assert_eq!(report.rejected_expired, 0);
        prop_assert_eq!(report.duplicates, 0);
        for dev in &report.devices {
            if !dev.battery_depleted {
                prop_assert!(
                    dev.offline_secs == 0.0,
                    "{} offline {}s", dev.device, dev.offline_secs
                );
            }
        }
    }

    /// The framework never emits more layer-3 traffic than the original
    /// system on the same workload.
    #[test]
    fn framework_never_worse_on_signaling(world in arb_world()) {
        let fw = build(&world, Mode::D2dFramework);
        let base = build(&world, Mode::OriginalCellular);
        prop_assert!(
            fw.total_l3 <= base.total_l3,
            "{} vs {}", fw.total_l3, base.total_l3
        );
        prop_assert!(fw.total_rrc <= base.total_rrc);
    }

    /// Determinism: the same random world runs to identical reports.
    #[test]
    fn worlds_are_deterministic(world in arb_world()) {
        let a = build(&world, Mode::D2dFramework);
        let b = build(&world, Mode::D2dFramework);
        prop_assert_eq!(a.total_l3, b.total_l3);
        prop_assert_eq!(a.delivered, b.delivered);
        prop_assert!((a.total_energy_uah - b.total_energy_uah).abs() < 1e-9);
    }

    /// Conservation: every UE heartbeat is accounted for — forwarded and
    /// confirmed, rescued by fallback, or still in flight at the horizon.
    #[test]
    fn heartbeats_are_conserved(world in arb_world()) {
        let report = build(&world, Mode::D2dFramework);
        // Delivered = all device heartbeats minus in-flight remainder;
        // it can never exceed what was generated.
        let generated_upper: u64 = report
            .devices
            .iter()
            .map(|_| (2 * 3600 / 240) as u64 + 2) // fastest app period 240 s
            .sum();
        prop_assert!(report.delivered <= generated_upper);
        prop_assert!(report.delivered > 0);
        // Rewards = forwards that made it into a flush; never exceeds
        // collected totals.
        for dev in &report.devices {
            if dev.role == Role::Relay {
                prop_assert!(dev.rewards <= dev.forwards);
            }
        }
    }

    /// Baseline worlds never report any D2D energy.
    #[test]
    fn baseline_is_pure_cellular(world in arb_world()) {
        let report = build(&world, Mode::OriginalCellular);
        for dev in &report.devices {
            for (group, energy) in &dev.energy_by_group {
                prop_assert!(
                    !matches!(
                        group,
                        PhaseGroup::Discovery | PhaseGroup::Connection | PhaseGroup::Forwarding
                    ) || *energy == 0.0
                );
            }
        }
    }
}
