//! Failure-injection suite: the framework must degrade to the cellular
//! path without ever losing a session, whatever dies.

use d2d_heartbeat::apps::AppProfile;
use d2d_heartbeat::core::world::{DeviceSpec, Mode, Role, Scenario, ScenarioConfig};
use d2d_heartbeat::mobility::{Mobility, Position};
use d2d_heartbeat::sim::SimDuration;

fn base_config(seed: u64) -> ScenarioConfig {
    let mut config = ScenarioConfig::new(SimDuration::from_secs(3 * 3600), seed);
    config.mode = Mode::D2dFramework;
    config
}

fn device(role: Role, x: f64, battery_mah: Option<f64>) -> DeviceSpec {
    DeviceSpec {
        role,
        apps: vec![AppProfile::wechat()],
        mobility: Mobility::stationary(Position::new(x, 0.0)),
        battery_mah,
    }
}

#[test]
fn relay_battery_death_is_survivable() {
    let mut config = base_config(42);
    config.add_device(device(Role::Relay, 0.0, Some(2.0)));
    config.add_device(device(Role::Ue, 1.0, None));
    config.add_device(device(Role::Ue, 2.0, None));
    let report = Scenario::new(config).run();

    assert!(report.devices[0].battery_depleted, "the relay must die");
    for ue in &report.devices[1..] {
        assert_eq!(ue.offline_secs, 0.0, "{} went offline", ue.device);
        assert!(
            ue.rrc_connections > 0,
            "{} never reached the fallback path",
            ue.device
        );
    }
    assert_eq!(report.duplicates, 0);
}

#[test]
fn all_relays_dead_becomes_the_original_system() {
    let mut config = base_config(7);
    // A relay with a microscopic battery: dead after the first listen.
    config.add_device(device(Role::Relay, 0.0, Some(0.2)));
    config.add_device(device(Role::Ue, 1.0, None));
    let report = Scenario::new(config).run();
    let ue = &report.devices[1];
    assert_eq!(ue.offline_secs, 0.0);
    // Essentially every heartbeat travelled over the UE's own radio.
    assert!(
        ue.rrc_connections as f64 >= 0.8 * (ue.forwards + ue.fallbacks).max(1) as f64,
        "rrc {} vs forwards {} fallbacks {}",
        ue.rrc_connections,
        ue.forwards,
        ue.fallbacks
    );
}

#[test]
fn ue_walking_out_of_range_mid_session_recovers() {
    let mut config = base_config(3);
    config.add_device(device(Role::Relay, 0.0, None));
    config.add_device(DeviceSpec {
        role: Role::Ue,
        apps: vec![AppProfile::wechat()],
        // Sprints away: out of Wi-Fi Direct range within two periods.
        mobility: Mobility::linear(Position::new(1.0, 0.0), (1.0, 0.0)),
        battery_mah: None,
    });
    let report = Scenario::new(config).run();
    let ue = &report.devices[1];
    assert_eq!(ue.offline_secs, 0.0);
    assert_eq!(report.rejected_expired, 0);
    assert!(ue.rrc_connections > 0, "cellular fallback engaged");
}

#[test]
fn overloaded_relay_rejections_are_rescued() {
    let mut config = base_config(11);
    config.framework.relay_capacity = 2; // tiny M with five UEs
    config.add_device(device(Role::Relay, 0.0, None));
    for x in 1..=5 {
        config.add_device(device(Role::Ue, x as f64, None));
    }
    let report = Scenario::new(config).run();
    let total_fallbacks: u64 = report.devices[1..].iter().map(|d| d.fallbacks).sum();
    assert!(total_fallbacks > 0, "capacity pressure must reject someone");
    assert_eq!(report.offline_secs, 0.0);
    assert_eq!(report.rejected_expired, 0);
    // The relay never buffers beyond M per period: collected ≤ 2 per
    // flush means its rewards track its (bounded) collections.
    assert!(report.devices[0].forwards > 0);
}

#[test]
fn lossy_link_at_range_edge_still_converges() {
    let mut config = base_config(5);
    // 160 m: inside Wi-Fi Direct range (180 m) but with elevated loss.
    // Raise the match threshold so the detector accepts the distance.
    config.framework.max_match_distance_m = 200.0;
    config.framework.energy_prejudgment = false;
    config.add_device(device(Role::Relay, 0.0, None));
    config.add_device(device(Role::Ue, 160.0, None));
    let report = Scenario::new(config).run();
    let ue = &report.devices[1];
    assert_eq!(ue.offline_secs, 0.0, "losses must never break presence");
    assert_eq!(report.rejected_expired, 0);
    assert!(
        ue.fallbacks > 0 || ue.forwards > 0,
        "the UE must have tried something"
    );
}

#[test]
fn dead_ue_simply_goes_silent() {
    let mut config = base_config(13);
    config.add_device(device(Role::Relay, 0.0, None));
    config.add_device(device(Role::Ue, 1.0, Some(0.5)));
    config.add_device(device(Role::Ue, 2.0, None));
    let report = Scenario::new(config).run();
    let dead_ue = &report.devices[1];
    assert!(dead_ue.battery_depleted);
    assert!(dead_ue.offline_secs > 0.0, "a dead phone is offline");
    // The healthy UE is unaffected.
    assert_eq!(report.devices[2].offline_secs, 0.0);
    assert_eq!(report.duplicates, 0);
}
