//! Failure-injection suite: the framework must degrade to the cellular
//! path without ever losing a session, whatever dies.
//!
//! The second half drives the declarative [`FaultPlan`] — one scenario
//! per fault kind, each asserting the UEs stay online (`offline_secs ==
//! 0`) and actually exercised the cellular fallback (`rrc_connections >
//! 0`).

use d2d_heartbeat::apps::AppProfile;
use d2d_heartbeat::core::world::{DeviceSpec, Mode, Role, Scenario, ScenarioConfig};
use d2d_heartbeat::mobility::{Mobility, Position};
use d2d_heartbeat::sim::fault::FaultKind;
use d2d_heartbeat::sim::{DeviceId, SimDuration, SimTime};

fn base_config(seed: u64) -> ScenarioConfig {
    let mut config = ScenarioConfig::new(SimDuration::from_secs(3 * 3600), seed);
    config.mode = Mode::D2dFramework;
    config
}

fn device(role: Role, x: f64, battery_mah: Option<f64>) -> DeviceSpec {
    DeviceSpec {
        role,
        apps: vec![AppProfile::wechat()],
        mobility: Mobility::stationary(Position::new(x, 0.0)),
        battery_mah,
    }
}

#[test]
fn relay_battery_death_is_survivable() {
    let mut config = base_config(42);
    config.add_device(device(Role::Relay, 0.0, Some(2.0)));
    config.add_device(device(Role::Ue, 1.0, None));
    config.add_device(device(Role::Ue, 2.0, None));
    let report = Scenario::new(config).run();

    assert!(report.devices[0].battery_depleted, "the relay must die");
    for ue in &report.devices[1..] {
        assert_eq!(ue.offline_secs, 0.0, "{} went offline", ue.device);
        assert!(
            ue.rrc_connections > 0,
            "{} never reached the fallback path",
            ue.device
        );
    }
    assert_eq!(report.duplicates, 0);
}

#[test]
fn all_relays_dead_becomes_the_original_system() {
    let mut config = base_config(7);
    // A relay with a microscopic battery: dead after the first listen.
    config.add_device(device(Role::Relay, 0.0, Some(0.2)));
    config.add_device(device(Role::Ue, 1.0, None));
    let report = Scenario::new(config).run();
    let ue = &report.devices[1];
    assert_eq!(ue.offline_secs, 0.0);
    // Essentially every heartbeat travelled over the UE's own radio.
    assert!(
        ue.rrc_connections as f64 >= 0.8 * (ue.forwards + ue.fallbacks).max(1) as f64,
        "rrc {} vs forwards {} fallbacks {}",
        ue.rrc_connections,
        ue.forwards,
        ue.fallbacks
    );
}

#[test]
fn ue_walking_out_of_range_mid_session_recovers() {
    let mut config = base_config(3);
    config.add_device(device(Role::Relay, 0.0, None));
    config.add_device(DeviceSpec {
        role: Role::Ue,
        apps: vec![AppProfile::wechat()],
        // Sprints away: out of Wi-Fi Direct range within two periods.
        mobility: Mobility::linear(Position::new(1.0, 0.0), (1.0, 0.0)),
        battery_mah: None,
    });
    let report = Scenario::new(config).run();
    let ue = &report.devices[1];
    assert_eq!(ue.offline_secs, 0.0);
    assert_eq!(report.rejected_expired, 0);
    assert!(ue.rrc_connections > 0, "cellular fallback engaged");
}

#[test]
fn overloaded_relay_rejections_are_rescued() {
    let mut config = base_config(11);
    config.framework.relay_capacity = 2; // tiny M with five UEs
    config.add_device(device(Role::Relay, 0.0, None));
    for x in 1..=5 {
        config.add_device(device(Role::Ue, x as f64, None));
    }
    let report = Scenario::new(config).run();
    let total_fallbacks: u64 = report.devices[1..].iter().map(|d| d.fallbacks).sum();
    assert!(total_fallbacks > 0, "capacity pressure must reject someone");
    assert_eq!(report.offline_secs, 0.0);
    assert_eq!(report.rejected_expired, 0);
    // The relay never buffers beyond M per period: collected ≤ 2 per
    // flush means its rewards track its (bounded) collections.
    assert!(report.devices[0].forwards > 0);
}

#[test]
fn lossy_link_at_range_edge_still_converges() {
    let mut config = base_config(5);
    // 160 m: inside Wi-Fi Direct range (180 m) but with elevated loss.
    // Raise the match threshold so the detector accepts the distance.
    config.framework.max_match_distance_m = 200.0;
    config.framework.energy_prejudgment = false;
    config.add_device(device(Role::Relay, 0.0, None));
    config.add_device(device(Role::Ue, 160.0, None));
    let report = Scenario::new(config).run();
    let ue = &report.devices[1];
    assert_eq!(ue.offline_secs, 0.0, "losses must never break presence");
    assert_eq!(report.rejected_expired, 0);
    assert!(
        ue.fallbacks > 0 || ue.forwards > 0,
        "the UE must have tried something"
    );
}

/// UEs stayed present and the fault actually pushed traffic onto the
/// cellular path: zero offline seconds, zero expirations, and at least
/// one RRC connection on each UE's own radio.
fn assert_degraded_to_cellular(report: &d2d_heartbeat::core::world::ScenarioReport) {
    assert_eq!(
        report.rejected_expired, 0,
        "a heartbeat expired undelivered"
    );
    for ue in report.devices.iter().filter(|d| d.role == Role::Ue) {
        assert_eq!(ue.offline_secs, 0.0, "{} went offline", ue.device);
        assert!(
            ue.rrc_connections > 0,
            "{} never reached the cellular fallback",
            ue.device
        );
    }
}

#[test]
fn link_drop_mid_transfer_degrades_to_cellular() {
    let mut config = base_config(21);
    config.add_device(device(Role::Relay, 0.0, None));
    config.add_device(device(Role::Ue, 1.0, None));
    config.add_device(device(Role::Ue, 2.0, None));
    // The first UE's D2D radio dies for 20 minutes mid-scenario; its
    // heartbeats must take the direct path until the window closes.
    config.faults.schedule(
        SimTime::from_secs(1000),
        FaultKind::LinkDrop {
            device: DeviceId::new(1),
            d2d_down_for: SimDuration::from_secs(1200),
        },
    );
    let report = Scenario::new(config).run();
    assert_degraded_to_cellular(&report);
    assert_eq!(report.duplicates, 0);
    // After the window the UE re-matches and forwards again.
    assert!(report.devices[1].forwards > 0, "never returned to D2D");
}

#[test]
fn degraded_link_is_rescued_by_feedback() {
    let mut config = base_config(22);
    config.add_device(device(Role::Relay, 0.0, None));
    config.add_device(device(Role::Ue, 1.0, None));
    // Total interference on the UE's link for 20 minutes: every D2D
    // transfer in the window fails outright.
    config.faults.schedule(
        SimTime::from_secs(1000),
        FaultKind::LinkDegrade {
            device: DeviceId::new(1),
            extra_loss: 1.0,
            duration: SimDuration::from_secs(1200),
        },
    );
    let report = Scenario::new(config).run();
    assert_degraded_to_cellular(&report);
}

#[test]
fn payload_loss_in_transit_is_rescued_by_feedback() {
    let mut config = base_config(23);
    config.add_device(device(Role::Relay, 0.0, None));
    config.add_device(device(Role::Ue, 1.0, None));
    // The transfer itself succeeds but the payload is corrupt: the UE
    // believes it forwarded, so only the feedback timeout can rescue it.
    config.faults.schedule(
        SimTime::from_secs(1000),
        FaultKind::PayloadLoss {
            device: DeviceId::new(1),
            probability: 1.0,
            duration: SimDuration::from_secs(1200),
        },
    );
    let report = Scenario::new(config).run();
    assert_degraded_to_cellular(&report);
    assert!(
        report.devices[1].fallbacks > 0,
        "lost payloads must surface as feedback fallbacks"
    );
}

#[test]
fn relay_departure_degrades_to_cellular() {
    let mut config = base_config(24);
    config.add_device(device(Role::Relay, 0.0, None));
    config.add_device(device(Role::Ue, 1.0, None));
    config.add_device(device(Role::Ue, 2.0, None));
    // The relay walks away half an hour in and never returns; both UEs
    // live on their own radios from then on.
    config.faults.schedule(
        SimTime::from_secs(1800),
        FaultKind::RelayDeparture {
            device: DeviceId::new(0),
            rejoin_after: None,
        },
    );
    let report = Scenario::new(config).run();
    assert_degraded_to_cellular(&report);
    // The departed relay keeps its own session alive over cellular too.
    assert_eq!(report.devices[0].offline_secs, 0.0);
}

#[test]
fn discovery_blackout_forces_the_direct_path() {
    let mut config = base_config(25);
    config.add_device(device(Role::Relay, 0.0, None));
    config.add_device(device(Role::Ue, 1.0, None));
    // Discovery is dark from the start: no UE can match a relay for the
    // first 15 minutes, so early heartbeats must go direct. Matching
    // resumes once the blackout lifts.
    config.faults.schedule(
        SimTime::ZERO,
        FaultKind::DiscoveryBlackout {
            duration: SimDuration::from_secs(900),
        },
    );
    let report = Scenario::new(config).run();
    assert_degraded_to_cellular(&report);
    assert!(
        report.devices[1].forwards > 0,
        "matching never resumed after the blackout"
    );
}

#[test]
fn cellular_outage_queues_and_drains_without_session_loss() {
    let mut config = base_config(26);
    config.add_device(device(Role::Relay, 0.0, None));
    config.add_device(device(Role::Ue, 1.0, None));
    config.add_device(device(Role::Ue, 2.0, None));
    // 450 s outage: longer than the 300 s feedback timeout (so UEs do
    // fall back mid-outage and the queue is exercised) but far shorter
    // than the 810 s expiration (so nothing goes stale). Queued copies
    // may race the relay's feedback, so duplicates are legal here.
    config.faults.schedule(
        SimTime::from_secs(1800),
        FaultKind::CellularOutage {
            duration: SimDuration::from_secs(450),
        },
    );
    let report = Scenario::new(config).run();
    assert_degraded_to_cellular(&report);
    assert!(report.delivered > 0);
}

/// A faulted config with the reliable-delivery ledger and telemetry
/// registry on, so each fault kind can be pinned to the *labelled*
/// counter it must move — not just the coarse `offline == 0 && rrc > 0`
/// signal the legacy tests check.
fn reliable_config(seed: u64) -> ScenarioConfig {
    let mut config = base_config(seed);
    config.reliable_delivery = true;
    config.telemetry = true;
    config
}

/// The exactly-once ledger identity every faulted run must satisfy.
fn assert_delivery_accounted(report: &d2d_heartbeat::core::world::ScenarioReport) {
    let d = report.delivery.as_ref().expect("reliable run");
    assert_eq!(
        d.delivered + d.expired + d.dropped_dead + d.in_flight,
        d.generated,
        "ledger accounting must balance: {d:?}"
    );
    assert_eq!(d.false_dead_secs, 0.0, "no live client may look dead");
}

#[test]
fn blackout_fallbacks_carry_the_blackout_cause_label() {
    let mut config = reliable_config(31);
    config.add_device(device(Role::Relay, 0.0, None));
    config.add_device(device(Role::Ue, 1.0, None));
    config.faults.schedule(
        SimTime::ZERO,
        FaultKind::DiscoveryBlackout {
            duration: SimDuration::from_secs(900),
        },
    );
    let report = Scenario::new(config).run();
    assert!(
        report
            .metrics
            .counter("hbr_fallback_total{cause=\"blackout\"}")
            > 0,
        "blackout fallbacks must be labelled with their cause"
    );
    assert_delivery_accounted(&report);
}

#[test]
fn link_drop_fallbacks_carry_the_d2d_down_cause_label() {
    let mut config = reliable_config(32);
    config.add_device(device(Role::Relay, 0.0, None));
    config.add_device(device(Role::Ue, 1.0, None));
    config.faults.schedule(
        SimTime::from_secs(1000),
        FaultKind::LinkDrop {
            device: DeviceId::new(1),
            d2d_down_for: SimDuration::from_secs(1200),
        },
    );
    let report = Scenario::new(config).run();
    assert!(
        report
            .metrics
            .counter("hbr_fallback_total{cause=\"d2d-down\"}")
            > 0,
        "a dropped D2D link must surface as d2d-down fallbacks"
    );
    assert_eq!(report.duplicates, 0);
    assert_delivery_accounted(&report);
}

#[test]
fn degraded_link_retries_are_counted_as_transfer_failures() {
    let mut config = reliable_config(33);
    config.add_device(device(Role::Relay, 0.0, None));
    config.add_device(device(Role::Ue, 1.0, None));
    config.faults.schedule(
        SimTime::from_secs(1000),
        FaultKind::LinkDegrade {
            device: DeviceId::new(1),
            extra_loss: 1.0,
            duration: SimDuration::from_secs(1200),
        },
    );
    let report = Scenario::new(config).run();
    assert!(
        report
            .metrics
            .counter("hbr_delivery_retry_total{reason=\"transfer-failed\"}")
            > 0,
        "failed transfers must schedule labelled D2D retries"
    );
    let d = report.delivery.as_ref().unwrap();
    assert!(d.retries > 0, "the ledger must count the retries");
    assert_eq!(report.duplicates, 0);
    assert_delivery_accounted(&report);
}

#[test]
fn payload_loss_retries_are_counted_as_feedback_timeouts() {
    let mut config = reliable_config(34);
    config.add_device(device(Role::Relay, 0.0, None));
    config.add_device(device(Role::Ue, 1.0, None));
    config.faults.schedule(
        SimTime::from_secs(1000),
        FaultKind::PayloadLoss {
            device: DeviceId::new(1),
            probability: 1.0,
            duration: SimDuration::from_secs(1200),
        },
    );
    let report = Scenario::new(config).run();
    assert!(
        report
            .metrics
            .counter("hbr_delivery_retry_total{reason=\"feedback-timeout\"}")
            > 0,
        "silently lost payloads must surface as feedback-timeout retries"
    );
    assert_eq!(report.duplicates, 0);
    assert_delivery_accounted(&report);
}

#[test]
fn relay_departure_requeues_are_counted_and_labelled() {
    let mut config = reliable_config(35);
    config.add_device(device(Role::Relay, 0.0, None));
    config.add_device(device(Role::Ue, 1.0, None));
    config.add_device(device(Role::Ue, 2.0, None));
    // Several departure/rejoin cycles at varying phases of the 270 s
    // heartbeat period so at least one catches a buffered batch.
    for at in [1700u64, 2905, 4110, 5315] {
        config.faults.schedule(
            SimTime::from_secs(at),
            FaultKind::RelayDeparture {
                device: DeviceId::new(0),
                rejoin_after: Some(SimDuration::from_secs(400)),
            },
        );
    }
    let report = Scenario::new(config).run();
    assert!(
        report
            .metrics
            .counter("hbr_delivery_retry_total{reason=\"relay-departed\"}")
            > 0,
        "a departing relay's batch must be re-queued as labelled retries"
    );
    let d = report.delivery.as_ref().unwrap();
    assert!(d.requeued > 0, "the ledger must count the re-queued batch");
    assert_eq!(report.duplicates, 0);
    assert_delivery_accounted(&report);
}

#[test]
fn dead_ue_simply_goes_silent() {
    let mut config = base_config(13);
    config.add_device(device(Role::Relay, 0.0, None));
    config.add_device(device(Role::Ue, 1.0, Some(0.5)));
    config.add_device(device(Role::Ue, 2.0, None));
    let report = Scenario::new(config).run();
    let dead_ue = &report.devices[1];
    assert!(dead_ue.battery_depleted);
    assert!(dead_ue.offline_secs > 0.0, "a dead phone is offline");
    // The healthy UE is unaffected.
    assert_eq!(report.devices[2].offline_secs, 0.0);
    assert_eq!(report.duplicates, 0);
}
