//! Cross-crate end-to-end scenarios through the event-driven world.

use d2d_heartbeat::apps::AppProfile;
use d2d_heartbeat::core::world::{
    DeviceSpec, Mode, Role, Scenario, ScenarioConfig, ScenarioReport,
};
use d2d_heartbeat::mobility::model::Bounds;
use d2d_heartbeat::mobility::{Mobility, Position};
use d2d_heartbeat::sim::{SimDuration, SimRng};

fn static_device(role: Role, x: f64, apps: Vec<AppProfile>) -> DeviceSpec {
    DeviceSpec {
        role,
        apps,
        mobility: Mobility::stationary(Position::new(x, 0.0)),
        battery_mah: None,
    }
}

fn small_world(mode: Mode, seed: u64, hours: u64) -> ScenarioReport {
    let mut config = ScenarioConfig::new(SimDuration::from_secs(hours * 3600), seed);
    config.mode = mode;
    config.add_device(static_device(Role::Relay, 0.0, vec![AppProfile::wechat()]));
    config.add_device(static_device(Role::Ue, 1.0, vec![AppProfile::wechat()]));
    config.add_device(static_device(Role::Ue, 3.0, vec![AppProfile::whatsapp()]));
    config.add_device(static_device(
        Role::Ue,
        5.0,
        vec![AppProfile::wechat(), AppProfile::qq()],
    ));
    Scenario::new(config).run()
}

#[test]
fn every_heartbeat_is_delivered_exactly_once() {
    let report = small_world(Mode::D2dFramework, 1, 6);
    assert!(report.delivered > 0);
    assert_eq!(report.duplicates, 0, "exactly-once delivery");
    assert_eq!(report.rejected_expired, 0, "nothing arrives late");
    assert_eq!(report.offline_secs, 0.0, "presence never lapses");
}

#[test]
fn framework_dominates_baseline_across_seeds() {
    for seed in [1u64, 17, 4242] {
        let fw = small_world(Mode::D2dFramework, seed, 4);
        let base = small_world(Mode::OriginalCellular, seed, 4);
        assert!(
            fw.total_l3 < base.total_l3,
            "seed {seed}: {} vs {}",
            fw.total_l3,
            base.total_l3
        );
        assert!(
            fw.total_energy_uah < base.total_energy_uah,
            "seed {seed}: energy {} vs {}",
            fw.total_energy_uah,
            base.total_energy_uah
        );
        assert_eq!(base.offline_secs, 0.0);
        assert_eq!(fw.offline_secs, 0.0);
    }
}

#[test]
fn identical_seeds_reproduce_identical_reports() {
    let a = small_world(Mode::D2dFramework, 99, 4);
    let b = small_world(Mode::D2dFramework, 99, 4);
    assert_eq!(a.total_l3, b.total_l3);
    assert_eq!(a.total_rrc, b.total_rrc);
    assert_eq!(a.delivered, b.delivered);
    assert!((a.total_energy_uah - b.total_energy_uah).abs() < 1e-9);
    for (da, db) in a.devices.iter().zip(&b.devices) {
        assert_eq!(da.forwards, db.forwards);
        assert_eq!(da.fallbacks, db.fallbacks);
        assert!((da.energy_uah - db.energy_uah).abs() < 1e-9);
    }
}

#[test]
fn different_seeds_differ_somewhere() {
    let a = small_world(Mode::D2dFramework, 1, 4);
    let b = small_world(Mode::D2dFramework, 2, 4);
    // Heartbeat jitter differs → at least the energy fingerprint differs.
    assert!(
        (a.total_energy_uah - b.total_energy_uah).abs() > 1e-6,
        "two seeds produced byte-identical worlds"
    );
}

#[test]
fn multi_app_devices_keep_every_session_alive() {
    let report = small_world(Mode::D2dFramework, 5, 8);
    for dev in &report.devices {
        assert_eq!(
            dev.offline_secs, 0.0,
            "{} lapsed ({:?})",
            dev.device, dev.role
        );
    }
    // The two-app UE must deliver more heartbeats than the single-app UEs.
    let two_app = &report.devices[3];
    let one_app = &report.devices[1];
    assert!(two_app.forwards + two_app.fallbacks >= one_app.forwards);
}

#[test]
fn walking_ue_falls_back_when_out_of_range_and_recovers() {
    let mut config = ScenarioConfig::new(SimDuration::from_secs(4 * 3600), 3);
    config.mode = Mode::D2dFramework;
    config.add_device(static_device(Role::Relay, 0.0, vec![AppProfile::wechat()]));
    // Walks away at 0.25 m/s: leaves the 15 m match radius after ~1 min,
    // the 180 m Wi-Fi Direct range after ~12 min.
    config.add_device(DeviceSpec {
        role: Role::Ue,
        apps: vec![AppProfile::wechat()],
        mobility: Mobility::linear(Position::new(1.0, 0.0), (0.25, 0.0)),
        battery_mah: None,
    });
    let report = Scenario::new(config).run();
    let ue = &report.devices[1];
    assert!(ue.rrc_connections > 0, "must fall back to cellular");
    assert_eq!(ue.offline_secs, 0.0, "mobility must not break presence");
    assert_eq!(report.rejected_expired, 0);
}

#[test]
fn crowd_scenario_scales_and_wins() {
    let rng = SimRng::seed_from(2017);
    let bounds = Bounds::square(30.0);
    let build = |mode: Mode| {
        let mut config = ScenarioConfig::new(SimDuration::from_secs(2 * 3600), 2017);
        config.mode = mode;
        let mut rng2 = rng.clone();
        for i in 0..20 {
            let x = rng2.range(1.0..29.0);
            let y = rng2.range(1.0..29.0);
            config.add_device(DeviceSpec {
                role: if i < 4 { Role::Relay } else { Role::Ue },
                apps: vec![AppProfile::wechat()],
                mobility: Mobility::stationary(Position::new(x, y)),
                battery_mah: None,
            });
        }
        Scenario::new(config).run()
    };
    let fw = build(Mode::D2dFramework);
    let base = build(Mode::OriginalCellular);
    assert!(
        fw.total_l3 * 2 <= base.total_l3 + base.total_l3 / 5,
        "crowd signaling reduction"
    );
    assert_eq!(fw.offline_secs, 0.0);
    let _ = bounds;
}

#[test]
fn relays_earn_rewards_proportional_to_work() {
    let report = small_world(Mode::D2dFramework, 8, 6);
    let relay = &report.devices[0];
    assert_eq!(relay.role, Role::Relay);
    assert!(relay.rewards > 0);
    assert!(relay.rewards <= relay.forwards);
    // UEs never earn anything.
    for ue in &report.devices[1..] {
        assert_eq!(ue.rewards, 0);
    }
}

#[test]
fn baseline_devices_never_touch_d2d_radios() {
    let report = small_world(Mode::OriginalCellular, 12, 4);
    use d2d_heartbeat::energy::PhaseGroup;
    for dev in &report.devices {
        for (group, energy) in &dev.energy_by_group {
            if matches!(
                group,
                PhaseGroup::Discovery | PhaseGroup::Connection | PhaseGroup::Forwarding
            ) {
                panic!("baseline {} drew {energy} µAh in {group}", dev.device);
            }
        }
    }
}
