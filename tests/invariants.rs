//! The runtime invariant checker must be *live*: a clean scenario runs
//! silently, a deliberately broken engine is caught, and the checker
//! itself never perturbs results.

use std::panic::{catch_unwind, AssertUnwindSafe};

use d2d_heartbeat::apps::AppProfile;
use d2d_heartbeat::core::world::{ChaosMutation, DeviceSpec, Mode, Role, Scenario, ScenarioConfig};
use d2d_heartbeat::mobility::{Mobility, Position};
use d2d_heartbeat::sim::fault::FaultKind;
use d2d_heartbeat::sim::{DeviceId, SimDuration, SimTime};

fn crowded_config(seed: u64) -> ScenarioConfig {
    let mut config = ScenarioConfig::new(SimDuration::from_secs(2 * 3600), seed);
    config.mode = Mode::D2dFramework;
    // A tiny relay capacity with five close UEs: plenty of arrivals per
    // period, so a scheduler that ignores its capacity flush overflows
    // within the first period.
    config.framework.relay_capacity = 2;
    config.add_device(spec(Role::Relay, 0.0));
    for x in 1..=5 {
        config.add_device(spec(Role::Ue, x as f64));
    }
    config
}

fn spec(role: Role, x: f64) -> DeviceSpec {
    DeviceSpec {
        role,
        apps: vec![AppProfile::wechat()],
        mobility: Mobility::stationary(Position::new(x, 0.0)),
        battery_mah: None,
    }
}

#[test]
fn clean_run_passes_the_checker() {
    let mut config = crowded_config(42);
    config.check_invariants = Some(true);
    config.trace_capacity = 2000;
    let report = Scenario::new(config).run();
    assert!(report.delivered > 0);
}

#[test]
fn broken_scheduler_is_caught_by_the_checker() {
    // Mutation smoke test: rewire the engine to ignore Algorithm 1's
    // capacity flush, so the relay buffers past M. The per-step buffer
    // check must trip — proving the checker actually watches the run
    // rather than vacuously passing.
    let mut config = crowded_config(42);
    config.check_invariants = Some(true);
    config.trace_capacity = 2000;
    config.mutation = Some(ChaosMutation::IgnoreCapacityFlush);
    let result = catch_unwind(AssertUnwindSafe(move || Scenario::new(config).run()));
    let err = result.expect_err("the mutated engine must trip the checker");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("invariant violation"),
        "expected an invariant violation, got: {msg}"
    );
    assert!(
        msg.contains("capacity"),
        "the violation must name the capacity bound, got: {msg}"
    );
}

#[test]
fn mutated_engine_passes_silently_with_the_checker_off() {
    // The complement of the smoke test: with the checker disabled the
    // same broken engine runs to completion — the violation is caught by
    // the checker, not by an unrelated assertion elsewhere.
    let mut config = crowded_config(42);
    config.check_invariants = Some(false);
    config.mutation = Some(ChaosMutation::IgnoreCapacityFlush);
    let _ = Scenario::new(config).run();
}

#[test]
fn checker_never_perturbs_results() {
    // The checker is pure observation: a faulted scenario must render
    // the identical report with the checker on and off.
    let build = |check: bool| {
        let mut config = crowded_config(7);
        config.check_invariants = Some(check);
        config.faults.schedule(
            SimTime::from_secs(1000),
            FaultKind::LinkDrop {
                device: DeviceId::new(1),
                d2d_down_for: SimDuration::from_secs(600),
            },
        );
        config.faults.schedule(
            SimTime::from_secs(2500),
            FaultKind::CellularOutage {
                duration: SimDuration::from_secs(450),
            },
        );
        Scenario::new(config).run()
    };
    let checked = build(true);
    let unchecked = build(false);
    assert_eq!(checked.render(), unchecked.render());
}

#[test]
fn faulted_runs_pass_the_checker_for_every_kind() {
    // Each fault kind, on under the checker: no false positives from
    // outage queues, departures or blackout re-matching.
    let kinds: Vec<(&str, FaultKind)> = vec![
        (
            "drop",
            FaultKind::LinkDrop {
                device: DeviceId::new(1),
                d2d_down_for: SimDuration::from_secs(600),
            },
        ),
        (
            "degrade",
            FaultKind::LinkDegrade {
                device: DeviceId::new(1),
                extra_loss: 1.0,
                duration: SimDuration::from_secs(600),
            },
        ),
        (
            "depart",
            FaultKind::RelayDeparture {
                device: DeviceId::new(0),
                rejoin_after: Some(SimDuration::from_secs(900)),
            },
        ),
        (
            "blackout",
            FaultKind::DiscoveryBlackout {
                duration: SimDuration::from_secs(600),
            },
        ),
        (
            "outage",
            FaultKind::CellularOutage {
                duration: SimDuration::from_secs(450),
            },
        ),
        (
            "loss",
            FaultKind::PayloadLoss {
                device: DeviceId::new(1),
                probability: 0.8,
                duration: SimDuration::from_secs(600),
            },
        ),
    ];
    for (name, kind) in kinds {
        let mut config = crowded_config(11);
        config.check_invariants = Some(true);
        config.trace_capacity = 2000;
        config.faults.schedule(SimTime::from_secs(1500), kind);
        let report = Scenario::new(config).run();
        assert!(report.delivered > 0, "fault {name}: nothing delivered");
    }
}
