//! The paper's quantitative claims, asserted end-to-end against the
//! calibrated models. These are the acceptance tests of the
//! reproduction: if one of them fails, a table or figure no longer
//! regenerates.

use d2d_heartbeat::core::experiment::{ControlledExperiment, ExperimentConfig};
use d2d_heartbeat::energy::PhaseGroup;

fn run(ue_count: usize, transmissions: u32) -> d2d_heartbeat::core::experiment::ExperimentRun {
    ControlledExperiment::new(ExperimentConfig {
        ue_count,
        transmissions,
        distance_m: 1.0,
        ..ExperimentConfig::default()
    })
    .run()
}

#[test]
fn abstract_claim_more_than_50_percent_signaling_reduction() {
    // "our solution achieves more than 50% signaling traffic reduction"
    for (ues, n) in [(1usize, 10u32), (2, 10), (7, 10)] {
        let r = run(ues, n);
        assert!(
            r.signaling_saving() >= 0.499,
            "{ues} UEs, {n} transmissions: saving {:.3}",
            r.signaling_saving()
        );
    }
}

#[test]
fn conclusion_claim_worst_case_one_ue_still_halves_signaling() {
    // "in the worst situation where there is only one UE connected to the
    // relay, our framework can still reduce about 50% cellular signaling"
    let r = run(1, 1);
    assert!(
        (r.signaling_saving() - 0.5).abs() < 0.05,
        "{}",
        r.signaling_saving()
    );
}

#[test]
fn fig9_claim_ue_saves_about_55_percent_at_first_forward() {
    let r = run(1, 1);
    let saving = r.ue_saving();
    assert!(
        (0.45..0.65).contains(&saving),
        "UE saving at first forward = {saving:.3}, paper says ≈0.55"
    );
}

#[test]
fn fig9_claim_system_breaks_even_at_first_forward() {
    let r = run(1, 1);
    assert!(
        r.system_saving().abs() < 0.08,
        "system saving at one forward = {:.3}, paper says ≈0",
        r.system_saving()
    );
}

#[test]
fn fig9_claim_system_saving_grows_toward_paper_36_percent() {
    // Our calibration honours Table III/IV exactly, which caps the
    // system saving at ≈28% (see EXPERIMENTS.md for the algebra); the
    // shape — monotone growth approaching a plateau — is the claim here.
    let savings: Vec<f64> = (1..=7).map(|n| run(1, n).system_saving()).collect();
    for w in savings.windows(2) {
        assert!(w[1] >= w[0] - 1e-9, "saving must grow: {savings:?}");
    }
    assert!(
        savings[6] > 0.20,
        "saving at 7 forwards = {:.3}, paper reports 0.36",
        savings[6]
    );
}

#[test]
fn table3_phase_energies_reproduce() {
    let r = run(1, 1);
    let cases = [
        (PhaseGroup::Discovery, 132.24, true),
        (PhaseGroup::Connection, 63.74, true),
        (PhaseGroup::Forwarding, 73.09, true),
        (PhaseGroup::Discovery, 122.50, false),
        (PhaseGroup::Connection, 60.29, false),
    ];
    for (group, paper, is_ue) in cases {
        let ours = if is_ue {
            r.ue_phase(group).as_micro_amp_hours()
        } else {
            r.relay_phase(group).as_micro_amp_hours()
        };
        assert!(
            (ours - paper).abs() / paper < 0.05,
            "{group:?} (ue={is_ue}): ours {ours:.2} vs paper {paper:.2}"
        );
    }
}

#[test]
fn table4_receive_energy_is_linear_with_matching_slope() {
    use d2d_heartbeat::d2d::TechProfile;
    use d2d_heartbeat::sim::SimTime;
    let per_msg = TechProfile::wifi_direct()
        .receive(SimTime::ZERO, 54, 1.0)
        .charge()
        .as_micro_amp_hours();
    let paper_slope = 911.196 / 7.0;
    assert!(
        (per_msg - paper_slope).abs() / paper_slope < 0.02,
        "receive slope {per_msg:.2} vs paper {paper_slope:.2}"
    );
}

#[test]
fn fig11_wasted_to_saved_ratio_falls_from_near_100_percent() {
    let start = run(1, 1).wasted_to_saved_ratio();
    let end = run(7, 8).wasted_to_saved_ratio();
    assert!((0.8..1.2).contains(&start), "start ratio {start:.2}");
    assert!(end < start / 3.0, "end ratio {end:.2} vs start {start:.2}");
}

#[test]
fn fig12_distance_monotonicity_and_15m_win() {
    let near = ControlledExperiment::new(ExperimentConfig {
        distance_m: 1.0,
        transmissions: 8,
        ..ExperimentConfig::default()
    })
    .run();
    let far = ControlledExperiment::new(ExperimentConfig {
        distance_m: 15.0,
        transmissions: 8,
        ..ExperimentConfig::default()
    })
    .run();
    assert!(far.ue_energy() > near.ue_energy());
    assert!(
        far.ue_energy() < far.original_device_energy(),
        "paper measured D2D still winning at 15 m"
    );
}

#[test]
fn fig13_size_insensitivity() {
    let small = ControlledExperiment::new(ExperimentConfig {
        message_size: 54,
        transmissions: 4,
        ..ExperimentConfig::default()
    })
    .run();
    let large = ControlledExperiment::new(ExperimentConfig {
        message_size: 270,
        transmissions: 4,
        ..ExperimentConfig::default()
    })
    .run();
    let spread = (large.ue_energy() - small.ue_energy()) / small.ue_energy();
    assert!(
        (0.0..0.12).contains(&spread),
        "1×→5× payload changed UE energy by {:.1}%",
        spread * 100.0
    );
}

#[test]
fn fig15_relay_signaling_tracks_one_original_device() {
    let r = run(1, 10);
    let relay = r.framework_l3() as f64;
    let one_device = r.original_l3() as f64 / 2.0;
    assert!(
        (relay / one_device - 1.0).abs() < 0.15,
        "relay {relay} vs one device {one_device}"
    );
}

#[test]
fn fig15_saving_improves_with_connected_ues() {
    let s1 = run(1, 10).signaling_saving();
    let s2 = run(2, 10).signaling_saving();
    let s7 = run(7, 10).signaling_saving();
    assert!(s1 < s2 && s2 < s7, "{s1:.3} {s2:.3} {s7:.3}");
    assert!(s7 > 0.8, "7 UEs should save >80%: {s7:.3}");
}
