//! Churn scenarios: attachments form, break and re-form under mobility,
//! and presence survives throughout.

use d2d_heartbeat::apps::AppProfile;
use d2d_heartbeat::core::fleet::FleetBuilder;
use d2d_heartbeat::core::world::{DeviceSpec, Mode, Role, Scenario, ScenarioConfig};
use d2d_heartbeat::mobility::{Mobility, Position};
use d2d_heartbeat::sim::fault::FaultKind;
use d2d_heartbeat::sim::{DeviceId, SimDuration, SimTime};

#[test]
fn stadium_exodus_hands_everyone_back_to_cellular() {
    // Half-time: everyone walks out of the stand in the same direction,
    // spreading far past D2D range. Attachments must fail over to the
    // cellular path without a single presence lapse.
    let mut config = ScenarioConfig::new(SimDuration::from_secs(2 * 3600), 31);
    config.mode = Mode::D2dFramework;
    config.add_device(DeviceSpec {
        role: Role::Relay,
        apps: vec![AppProfile::wechat()],
        mobility: Mobility::stationary(Position::new(0.0, 0.0)),
        battery_mah: None,
    });
    for i in 0..6 {
        // Fans shuffle out slowly (heartbeats tick every 270 s, so the
        // first ones still happen within the 15 m match radius), then
        // drift past it — and past link range — during the scenario.
        let speed = 0.03 + 0.01 * i as f64;
        let dir = if i % 2 == 0 { 1.0 } else { -1.0 };
        config.add_device(DeviceSpec {
            role: Role::Ue,
            apps: vec![AppProfile::wechat()],
            mobility: Mobility::linear(
                Position::new(1.0 + i as f64 * 0.4, 0.0),
                (speed * dir, speed * 0.3),
            ),
            battery_mah: None,
        });
    }
    let report = Scenario::new(config).run();

    assert_eq!(report.rejected_expired, 0);
    for ue in &report.devices[1..] {
        assert_eq!(ue.offline_secs, 0.0, "{} lapsed mid-exodus", ue.device);
        assert!(
            ue.rrc_connections > 0,
            "{} never reached the cellular path after leaving range",
            ue.device
        );
    }
    // Early heartbeats should still have used the relay.
    let total_forwards: u64 = report.devices[1..].iter().map(|d| d.forwards).sum();
    assert!(total_forwards > 0, "nobody ever used the relay");
}

#[test]
fn wandering_crowd_keeps_presence_through_rematching() {
    let mut config = ScenarioConfig::new(SimDuration::from_secs(3 * 3600), 13);
    config.mode = Mode::D2dFramework;
    for spec in FleetBuilder::new(16, 4)
        .area_side_m(25.0)
        .walker_share(0.5) // heavy churn: half the crowd wanders
        .build(13)
    {
        config.add_device(spec);
    }
    let report = Scenario::new(config).run();
    assert_eq!(report.rejected_expired, 0);
    assert_eq!(report.duplicates, 0);
    for dev in &report.devices {
        assert_eq!(dev.offline_secs, 0.0, "{} lapsed", dev.device);
    }
}

#[test]
fn relay_churn_via_fault_plan_keeps_presence() {
    // The relay repeatedly leaves and returns — departure-with-rejoin
    // faults every half hour. Members must detach, live on cellular,
    // and re-match each time the relay comes back.
    let mut config = ScenarioConfig::new(SimDuration::from_secs(3 * 3600), 17);
    config.mode = Mode::D2dFramework;
    config.add_device(DeviceSpec {
        role: Role::Relay,
        apps: vec![AppProfile::wechat()],
        mobility: Mobility::stationary(Position::new(0.0, 0.0)),
        battery_mah: None,
    });
    for i in 0..3 {
        config.add_device(DeviceSpec {
            role: Role::Ue,
            apps: vec![AppProfile::wechat()],
            mobility: Mobility::stationary(Position::new(1.0 + i as f64, 0.0)),
            battery_mah: None,
        });
    }
    for cycle in 0..3u64 {
        config.faults.schedule(
            SimTime::from_secs(1500 + cycle * 1800),
            FaultKind::RelayDeparture {
                device: DeviceId::new(0),
                rejoin_after: Some(SimDuration::from_secs(900)),
            },
        );
    }
    let report = Scenario::new(config).run();

    assert_eq!(report.rejected_expired, 0);
    for ue in &report.devices[1..] {
        assert_eq!(ue.offline_secs, 0.0, "{} lapsed during churn", ue.device);
        assert!(
            ue.rrc_connections > 0,
            "{} never fell back while the relay was away",
            ue.device
        );
        assert!(
            ue.forwards > 0,
            "{} never re-matched after a rejoin",
            ue.device
        );
    }
    // The relay genuinely served between departures.
    assert!(report.devices[0].forwards > 0);
}

#[test]
fn relay_stats_reflect_aggregation() {
    let mut config = ScenarioConfig::new(SimDuration::from_secs(4 * 3600), 3);
    config.mode = Mode::D2dFramework;
    for spec in FleetBuilder::new(8, 1)
        .area_side_m(10.0)
        .walker_share(0.0)
        .build(3)
    {
        config.add_device(spec);
    }
    let report = Scenario::new(config).run();
    let relay = &report.devices[0];
    assert_eq!(relay.role, Role::Relay);
    let batch = relay.mean_batch_size.expect("relay flushed at least once");
    assert!(
        batch > 1.0,
        "aggregation means >1 heartbeat per flush, got {batch}"
    );
    let delay = relay
        .mean_queueing_delay_secs
        .expect("relay queued heartbeats");
    assert!(
        delay > 10.0 && delay < 270.0,
        "queueing delay {delay}s must sit inside the period"
    );
    // UEs report no scheduler stats.
    assert!(report.devices[1].mean_batch_size.is_none());
}
