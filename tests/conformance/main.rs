//! Conformance suite: scripted adversarial interleavings for the
//! delivery protocol, expressed as scenario DAGs (`hbr_conform`).
//!
//! Every scenario goes through [`hbr_conform::run_reproducible`], which
//! executes it twice against fresh systems and asserts the two event
//! logs are byte-identical — determinism is part of the conformance
//! contract, not a best effort. CI runs this target under
//! `HBR_CHECK_INVARIANTS=1` at `HBR_THREADS=1` and `4`.
//!
//! Layout:
//!
//! * [`stack_scenarios`] — component-level interleavings against the
//!   real scheduler/ledger/feedback/server stack behind a scripted
//!   relay (`hbr_conform::StackHarness`).
//! * [`world_scenarios`] — full-engine interleavings with mid-run fault
//!   injection (`hbr_conform::WorldHarness`).
//!
//! The three PR 5 regressions live here as named scenarios, each in at
//! least two legal interleavings:
//!
//! * retry racing link establishment —
//!   `world_scenarios::departure_requeue_races_link_establishment`,
//!   `world_scenarios::emission_races_link_establishment_to_replacement`
//! * non-monotone trace stamps vs `Tracer::between` —
//!   `stack_scenarios::clamped_marks_keep_trace_binary_searchable`,
//!   `stack_scenarios::clamp_races_live_traffic_between_probes`
//! * retry budgeting against the liveness deadline —
//!   `stack_scenarios::liveness_budget_blocks_late_retry`,
//!   `stack_scenarios::backoff_cap_boundary_at_liveness_deadline`

mod stack_scenarios;
mod world_scenarios;
