//! Component-level conformance scenarios: the real delivery stack
//! (scheduler, ledger, feedback tracker, server, tracer, invariant
//! checker) behind a scripted relay.
//!
//! Timing cheat-sheet for the defaults used below (`StackConfig`):
//! feedback timeout 300 s, relay period 60 s, capacity 7, backoff
//! 5 s base / 60 s cap / 3 attempts / ±20 % jitter, server expiration
//! 810 s. A heartbeat with an 810 s budget has its liveness deadline at
//! 540 s (two thirds of the budget), so the last useful retry instant
//! is 532 s (`RESCUE_MARGIN` = 8 s).

use d2d_heartbeat::core::BackoffPolicy;
use d2d_heartbeat::sim::{SimDuration, SimTime};
use hbr_conform::{
    run_reproducible, RelayMode, ScenarioDag, StackConfig, StackHarness, StackSnapshot, StackView,
    Stim,
};

fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

fn at(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

fn emit(seq: u32, budget_secs: u64) -> Stim {
    Stim::Emit {
        seq,
        budget: secs(budget_secs),
    }
}

/// Shared quiescence conditions: the ledger audit balances and no retry
/// was ever planned past the liveness deadline.
fn require_clean_books(d: &mut ScenarioDag<StackHarness>) {
    d.require("books-balance", |s: &StackSnapshot| {
        // The invariant checker already panics on silent loss at
        // quiescence; here we pin its fate tallies to the live view.
        let a = &s.audit;
        if s.view.in_flight as u64 == a.in_flight && a.delivered == s.view.server_delivered {
            Ok(format!(
                "audit: {} delivered, {} expired, {} in flight",
                a.delivered, a.expired, a.in_flight
            ))
        } else {
            Err(format!("audit {a:?} vs view {:?}", s.view))
        }
    });
    d.require("liveness-budget-respected", |s: &StackSnapshot| {
        if s.retry_violations.is_empty() {
            Ok(String::from("no retry planned past liveness"))
        } else {
            Err(s.retry_violations.join("; "))
        }
    });
}

/// Duplicate storms into the seq-dedup layer: after a clean delivery,
/// fresh-id copies of the same `(source, app, seq)` must all be
/// swallowed by the sequence layer, and an exact re-send of the
/// original copy by the id layer. Exactly one delivery survives.
#[test]
fn duplicate_storm_is_swallowed_by_both_dedup_layers() {
    run_reproducible(|| {
        let mut d = ScenarioDag::new("duplicate-storm");
        let e = d.inject("emit", emit(9, 810));
        let flush = d.advance("period-flush", at(61));
        let storm = d.inject("storm", Stim::DuplicateStorm { copies: 4 });
        let resend = d.inject("resend-original", Stim::RedeliverLastCopy);
        let drain = d.advance("drain", at(120));
        d.chain(&[e, flush, storm, resend, drain]);
        d.require("exactly-once", |s: &StackSnapshot| {
            if s.view.server_delivered == 1 && s.view.server_duplicates == 5 {
                Ok(String::from("1 accepted, 5 swallowed"))
            } else {
                Err(format!("view {:?}", s.view))
            }
        });
        d.require("layers-named-in-order", |s: &StackSnapshot| {
            let want = [
                "seq9:accepted",
                "seq9:duplicate-seq",
                "seq9:duplicate-seq",
                "seq9:duplicate-seq",
                "seq9:duplicate-seq",
                "seq9:duplicate-id",
            ];
            if s.outcomes == want {
                Ok(String::from("seq layer then id layer"))
            } else {
                Err(format!("outcomes {:?}", s.outcomes))
            }
        });
        require_clean_books(&mut d);
        (d, StackHarness::new(StackConfig::default()))
    })
    .assert_ok();
}

/// Departure racing the feedback deadline, interleaving 1: the relay
/// departs *while the forward is still awaiting feedback*. The pending
/// entry must be retracted (not left to time out), the heartbeat
/// requeued, and — after a rejoin — redelivered exactly once.
#[test]
fn departure_before_feedback_deadline_retracts_then_rejoins() {
    run_reproducible(|| {
        // Long relay period keeps the heartbeat buffered (and its
        // feedback pending) when the departure lands.
        let config = StackConfig {
            period: secs(600),
            feedback_timeout: secs(700),
            ..StackConfig::default()
        };
        let mut d = ScenarioDag::new("departure-before-feedback-deadline");
        let e = d.inject("emit", emit(1, 810));
        let t100 = d.advance("position", at(100));
        let depart = d.perturb("depart", Stim::Depart);
        let check = d.expect("retracted-not-pending", |v: &StackView| {
            if v.feedback_pending == 0 && v.in_flight == 1 {
                Ok(String::from("feedback retracted, ledger still owns it"))
            } else {
                Err(format!("view {v:?}"))
            }
        });
        let rejoin = d.inject("rejoin", Stim::Rejoin);
        let drain = d.advance("drain", at(900));
        d.chain(&[e, t100, depart, check, rejoin, drain]);
        d.require("redelivered-exactly-once", |s: &StackSnapshot| {
            if s.view.server_delivered == 1
                && s.view.server_duplicates == 0
                && s.view.retries == 1
                && s.view.fallbacks == 0
            {
                Ok(String::from("1 delivery via 1 D2D retry"))
            } else {
                Err(format!("view {:?}", s.view))
            }
        });
        d.require("retraction-observed", |s: &StackSnapshot| {
            if s.hook_log
                .iter()
                .any(|l| l.contains("feedback-retracted n=1"))
            {
                Ok(String::from("retract n=1 in hook log"))
            } else {
                Err(format!("hook log {:?}", s.hook_log))
            }
        });
        require_clean_books(&mut d);
        (d, StackHarness::new(config))
    })
    .assert_ok();
}

/// Departure racing the feedback deadline, interleaving 2: the flush
/// (and its feedback confirmation) wins the race. The departure then
/// finds nothing pending and the retraction must be a no-op — no
/// phantom requeue, no second delivery.
#[test]
fn departure_after_flush_is_a_retract_noop() {
    run_reproducible(|| {
        let mut d = ScenarioDag::new("departure-after-flush");
        let e = d.inject("emit", emit(1, 810));
        let flush = d.advance("period-flush", at(61));
        let depart = d.perturb("depart", Stim::Depart);
        let drain = d.advance("drain", at(200));
        d.chain(&[e, flush, depart, drain]);
        d.require("no-second-delivery", |s: &StackSnapshot| {
            if s.view.server_delivered == 1 && s.view.retries == 0 && s.view.fallbacks == 0 {
                Ok(String::from("flush won; departure changed nothing"))
            } else {
                Err(format!("view {:?}", s.view))
            }
        });
        d.require("retract-was-noop", |s: &StackSnapshot| {
            if s.hook_log
                .iter()
                .any(|l| l.contains("feedback-retracted n=0"))
            {
                Ok(String::from("retract n=0 in hook log"))
            } else {
                Err(format!("hook log {:?}", s.hook_log))
            }
        });
        require_clean_books(&mut d);
        (d, StackHarness::new(StackConfig::default()))
    })
    .assert_ok();
}

/// Two departures in one epoch: the second retraction hits entries that
/// are already retracted and must be idempotent (the satellite fix in
/// `FeedbackTracker::retract`). The heartbeat still gets redelivered
/// exactly once after the rejoin.
#[test]
fn double_departure_in_one_epoch_is_idempotent() {
    run_reproducible(|| {
        let config = StackConfig {
            period: secs(600),
            feedback_timeout: secs(700),
            ..StackConfig::default()
        };
        let mut d = ScenarioDag::new("double-departure-one-epoch");
        let e = d.inject("emit", emit(1, 810));
        let t50 = d.advance("position", at(50));
        let first = d.perturb("depart-1", Stim::Depart);
        let second = d.perturb("depart-2", Stim::Depart);
        let check = d.expect("still-owned-once", |v: &StackView| {
            if v.in_flight == 1 && v.feedback_pending == 0 {
                Ok(String::from("one ledger entry, nothing pending twice"))
            } else {
                Err(format!("view {v:?}"))
            }
        });
        let rejoin = d.inject("rejoin", Stim::Rejoin);
        let drain = d.advance("drain", at(900));
        d.chain(&[e, t50, first, second, check, rejoin, drain]);
        d.require("exactly-once", |s: &StackSnapshot| {
            if s.view.server_delivered == 1 && s.view.server_duplicates == 0 {
                Ok(format!("1 delivery after {} retry(ies)", s.view.retries))
            } else {
                Err(format!("view {:?}", s.view))
            }
        });
        d.require("second-retract-was-noop", |s: &StackSnapshot| {
            let real = s
                .hook_log
                .iter()
                .any(|l| l.contains("feedback-retracted n=1"));
            let noop = s
                .hook_log
                .iter()
                .any(|l| l.contains("feedback-retracted n=0"));
            if real && noop {
                Ok(String::from("retract n=1 then retract n=0"))
            } else {
                Err(format!("hook log {:?}", s.hook_log))
            }
        });
        require_clean_books(&mut d);
        (d, StackHarness::new(config))
    })
    .assert_ok();
}

/// PR 5 liveness race, interleaving 1 (the original regression): a
/// lossy relay forces feedback-timeout rescues; the second retry would
/// land after the liveness deadline (540 s for an 810 s budget) and
/// must be refused in favour of an immediate cellular fallback.
/// Reverting `plan_retry` to budget against `expires_at` plans that
/// retry at ~615 s and `retry_violations` turns non-empty.
#[test]
fn liveness_budget_blocks_late_retry() {
    run_reproducible(|| {
        let mut d = ScenarioDag::new("liveness-blocks-late-retry");
        let lossy = d.perturb("lossy-relay", Stim::Relay(RelayMode::LosingPayloads));
        let e = d.inject("emit", emit(1, 810));
        // Feedback times out at 300 s; the first retry (~305 s) has not
        // fired yet at 302 s.
        let t302 = d.advance("first-timeout", at(302));
        let planned = d.expect("first-retry-planned", |v: &StackView| {
            if v.retries == 1 && v.fallbacks == 0 && v.in_flight == 1 {
                Ok(String::from("retry 1 planned, no fallback yet"))
            } else {
                Err(format!("view {v:?}"))
            }
        });
        // The first retry fires (~305 s) and is lost again; its
        // feedback deadline (~605 s) is past the liveness deadline.
        let t550 = d.advance("past-liveness", at(550));
        let pending = d.expect("still-pending-past-liveness", |v: &StackView| {
            if v.server_delivered == 0 && v.fallbacks == 0 && v.feedback_pending == 1 {
                Ok(String::from("awaiting the doomed feedback"))
            } else {
                Err(format!("view {v:?}"))
            }
        });
        let drain = d.advance("drain", at(810));
        d.chain(&[lossy, e, t302, planned, t550, pending, drain]);
        d.require("rescued-by-fallback", |s: &StackSnapshot| {
            if s.view.server_delivered == 1 && s.view.retries == 1 && s.view.fallbacks == 1 {
                Ok(String::from("retry 2 refused; cellular rescued it"))
            } else {
                Err(format!("view {:?}", s.view))
            }
        });
        d.require("refusal-recorded", |s: &StackSnapshot| {
            if s.hook_log.iter().any(|l| l.contains("retry-exhausted")) {
                Ok(String::from("ledger reported the refusal"))
            } else {
                Err(format!("hook log {:?}", s.hook_log))
            }
        });
        d.require("never-read-as-dead", |s: &StackSnapshot| {
            if s.offline_secs == 0.0 {
                Ok(String::from("presence gap 0 s"))
            } else {
                Err(format!("{} s offline", s.offline_secs))
            }
        });
        require_clean_books(&mut d);
        (d, StackHarness::new(StackConfig::default()))
    })
    .assert_ok();
}

/// PR 5 liveness race, interleaving 2: an aggressive backoff whose
/// delays clamp at the cap, cycling retry → timeout → retry right up to
/// the liveness boundary. The attempt budget (6) is *not* what stops
/// the cycle — the liveness deadline is, and no planned retry may cross
/// it.
#[test]
fn backoff_cap_boundary_at_liveness_deadline() {
    run_reproducible(|| {
        let config = StackConfig {
            feedback_timeout: secs(50),
            backoff: BackoffPolicy {
                base: secs(40),
                cap: secs(60),
                max_attempts: 6,
                jitter_frac: 0.2,
            },
            ..StackConfig::default()
        };
        let mut d = ScenarioDag::new("backoff-cap-at-liveness");
        let lossy = d.perturb("lossy-relay", Stim::Relay(RelayMode::LosingPayloads));
        let e = d.inject("emit", emit(1, 810));
        let drain = d.advance("drain", at(810));
        d.chain(&[lossy, e, drain]);
        d.require("cap-cycle-ran", |s: &StackSnapshot| {
            // Each cycle is ~50 s timeout + a capped ~60 s delay; the
            // liveness boundary (532 s) admits 4 or 5 of them depending
            // on jitter, never the full attempt budget of 6.
            if (4..=5).contains(&s.view.retries) && s.view.fallbacks == 1 {
                Ok(format!("{} capped retries, then fallback", s.view.retries))
            } else {
                Err(format!("view {:?}", s.view))
            }
        });
        d.require("exactly-once", |s: &StackSnapshot| {
            if s.view.server_delivered == 1 && s.view.server_duplicates == 0 {
                Ok(String::from("one delivery despite the churn"))
            } else {
                Err(format!("view {:?}", s.view))
            }
        });
        require_clean_books(&mut d);
        (d, StackHarness::new(config))
    })
    .assert_ok();
}

/// PR 5 trace-clamp race, interleaving 1 (pure stamps): handlers record
/// entries with raw stamps that run backwards; `Tracer::record` must
/// clamp them to the ring tail so `between`'s binary searches stay
/// valid. Reverting the clamp leaves the ring unsorted and both
/// requires fail.
#[test]
fn clamped_marks_keep_trace_binary_searchable() {
    run_reproducible(|| {
        let mut d = ScenarioDag::new("clamped-marks-searchable");
        let m30 = d.inject("mark-30", Stim::Mark { at: at(30) });
        let m5 = d.inject("stale-mark-5", Stim::Mark { at: at(5) });
        let m45 = d.inject("mark-45", Stim::Mark { at: at(45) });
        let m2 = d.inject("stale-mark-2", Stim::Mark { at: at(2) });
        let p1 = d.inject(
            "probe-early",
            Stim::ProbeWindow {
                from: at(0),
                to: at(10),
            },
        );
        let p2 = d.inject(
            "probe-mid",
            Stim::ProbeWindow {
                from: at(25),
                to: at(50),
            },
        );
        let p3 = d.inject(
            "probe-all",
            Stim::ProbeWindow {
                from: at(0),
                to: at(100),
            },
        );
        d.chain(&[m30, m5, m45, m2, p1, p2, p3]);
        d.require("ring-sorted", |s: &StackSnapshot| {
            if s.trace_sorted {
                Ok(String::from("ring is non-decreasing"))
            } else {
                Err(String::from("ring is out of order"))
            }
        });
        d.require("between-agrees-with-scan", |s: &StackSnapshot| {
            if s.probe_mismatches.is_empty() {
                Ok(String::from("3 probes consistent"))
            } else {
                Err(s.probe_mismatches.join("; "))
            }
        });
        (d, StackHarness::new(StackConfig::default()))
    })
    .assert_ok();
}

/// PR 5 trace-clamp race, interleaving 2: the stale stamp arrives
/// *between* real protocol entries (emit, feedback-timeout, retry,
/// fallback traces), and probe windows straddle the clamp boundary.
#[test]
fn clamp_races_live_traffic_between_probes() {
    run_reproducible(|| {
        let mut d = ScenarioDag::new("clamp-races-live-traffic");
        let lossy = d.perturb("lossy-relay", Stim::Relay(RelayMode::LosingPayloads));
        let e = d.inject("emit", emit(1, 810));
        // The feedback timeout traces at 300 s; a handler then records
        // a transfer-completion stamp from the past.
        let t302 = d.advance("first-timeout", at(302));
        let stale = d.inject("stale-mark-100", Stim::Mark { at: at(100) });
        let p1 = d.inject(
            "probe-before-clamp",
            Stim::ProbeWindow {
                from: at(0),
                to: at(50),
            },
        );
        let p2 = d.inject(
            "probe-around-clamp",
            Stim::ProbeWindow {
                from: at(250),
                to: at(310),
            },
        );
        let p3 = d.inject(
            "probe-all",
            Stim::ProbeWindow {
                from: at(0),
                to: at(1000),
            },
        );
        let drain = d.advance("drain", at(810));
        d.chain(&[lossy, e, t302, stale, p1, p2, p3, drain]);
        d.require("ring-sorted", |s: &StackSnapshot| {
            if s.trace_sorted {
                Ok(String::from("ring is non-decreasing"))
            } else {
                Err(String::from("ring is out of order"))
            }
        });
        d.require("between-agrees-with-scan", |s: &StackSnapshot| {
            if s.probe_mismatches.is_empty() {
                Ok(String::from("3 probes consistent"))
            } else {
                Err(s.probe_mismatches.join("; "))
            }
        });
        d.require("delivery-still-clean", |s: &StackSnapshot| {
            if s.view.server_delivered == 1 {
                Ok(String::from("exactly-once held under the noise"))
            } else {
                Err(format!("view {:?}", s.view))
            }
        });
        require_clean_books(&mut d);
        (d, StackHarness::new(StackConfig::default()))
    })
    .assert_ok();
}

/// Algorithm 1's two flush triggers racing: the seventh arrival fills
/// the buffer and must flush on capacity *at the arrival instant*,
/// opening a fresh period that the eighth arrival rides to the period
/// deadline. No duplicate, no rejection.
#[test]
fn capacity_flush_races_period_deadline() {
    run_reproducible(|| {
        let mut d = ScenarioDag::new("capacity-races-period");
        let mut chain = Vec::new();
        for seq in 1..=6u32 {
            chain.push(d.inject(format!("emit-{seq}"), emit(seq, 810)));
        }
        chain.push(d.expect("six-buffered", |v: &StackView| {
            if v.relay_buffered == 6 && v.server_delivered == 0 {
                Ok(String::from("buffer one short of capacity"))
            } else {
                Err(format!("view {v:?}"))
            }
        }));
        chain.push(d.inject("emit-7-capacity", emit(7, 810)));
        chain.push(d.expect("capacity-flushed", |v: &StackView| {
            if v.server_delivered == 7 && v.relay_buffered == 0 {
                Ok(String::from("capacity flush landed at the arrival instant"))
            } else {
                Err(format!("view {v:?}"))
            }
        }));
        chain.push(d.inject("emit-8-next-period", emit(8, 810)));
        chain.push(d.advance("period-flush", at(61)));
        d.chain(&chain);
        d.require("all-eight-once", |s: &StackSnapshot| {
            if s.view.server_delivered == 8
                && s.view.server_duplicates == 0
                && s.view.fallbacks == 0
            {
                Ok(String::from("7 on capacity + 1 on period"))
            } else {
                Err(format!("view {:?}", s.view))
            }
        });
        d.require("capacity-reason-observed", |s: &StackSnapshot| {
            if s.hook_log
                .iter()
                .any(|l| l.contains("Flush(CapacityReached)"))
            {
                Ok(String::from("scheduler named CapacityReached"))
            } else {
                Err(format!("hook log {:?}", s.hook_log))
            }
        });
        require_clean_books(&mut d);
        (d, StackHarness::new(StackConfig::default()))
    })
    .assert_ok();
}

/// A short-budget heartbeat through a lossy relay: the feedback
/// deadline is *capped* at `expires_at − RESCUE_MARGIN` (92 s here, not
/// the 300 s timeout), so the rescue fires while the copy is still
/// fresh and the server never sees an expired copy. This cap is why an
/// expired rejection is structurally unreachable from the UE's own
/// recovery machinery — only world-level queueing (see the outage
/// scenario) can age a copy past its budget.
#[test]
fn feedback_deadline_capped_by_expiry_rescues_in_time() {
    run_reproducible(|| {
        let mut d = ScenarioDag::new("expiry-capped-feedback-deadline");
        let lossy = d.perturb("lossy-relay", Stim::Relay(RelayMode::LosingPayloads));
        // 100 s budget: liveness deadline ~67 s, expiry 100 s. The
        // 300 s feedback timeout would be useless; the cap is not.
        let e = d.inject("emit", emit(1, 100));
        let drain = d.advance("drain", at(400));
        d.chain(&[lossy, e, drain]);
        d.require("deadline-was-capped", |s: &StackSnapshot| {
            if s.hook_log
                .iter()
                .any(|l| l.contains("feedback-armed") && l.contains("deadline=t=92.000000s"))
            {
                Ok(String::from("armed at expires - margin, not at timeout"))
            } else {
                Err(format!("hook log {:?}", s.hook_log))
            }
        });
        d.require("rescued-while-fresh", |s: &StackSnapshot| {
            if s.view.server_delivered == 1
                && s.view.server_rejected_expired == 0
                && s.view.fallbacks == 1
                && s.view.retries == 0
            {
                Ok(String::from("fallback landed before expiry"))
            } else {
                Err(format!("view {:?}", s.view))
            }
        });
        d.require("retry-refused-past-liveness", |s: &StackSnapshot| {
            // At 92 s the liveness deadline (~59 s with margin) is
            // already gone: the ledger must refuse a D2D retry.
            if s.hook_log.iter().any(|l| l.contains("retry-exhausted")) {
                Ok(String::from("no D2D retry attempted"))
            } else {
                Err(format!("hook log {:?}", s.hook_log))
            }
        });
        require_clean_books(&mut d);
        (d, StackHarness::new(StackConfig::default()))
    })
    .assert_ok();
}
