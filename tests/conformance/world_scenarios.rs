//! World-level conformance scenarios: the full event-driven engine
//! (mobility, discovery, link establishment, radios, faults) behind the
//! DAG facade, with faults injected *mid-run* against in-flight
//! protocol activity.
//!
//! Timing cheat-sheet: every WeChat device emits its first heartbeat at
//! exactly t = 270 s (the profile period), with an 810 s freshness
//! budget. A relay's aggregation period is anchored at its own
//! heartbeats, so a member's forward at ~275 s stays buffered at the
//! relay until ~540 s — a wide window for departures to race the
//! feedback machinery. Re-matching to a WiFi-Direct relay costs 3.4 s
//! of discovery plus 1.5 s of connection setup, which is what the
//! requeued retry (~5 s backoff) races.

use d2d_heartbeat::apps::AppProfile;
use d2d_heartbeat::core::world::{DeviceSpec, Mode, Role, ScenarioConfig};
use d2d_heartbeat::mobility::{Mobility, Position};
use d2d_heartbeat::sim::fault::FaultKind;
use d2d_heartbeat::sim::{DeviceId, SimDuration, SimTime};
use hbr_conform::{
    delivery_accounted, run_reproducible, ScenarioDag, WorldHarness, WorldStim, WorldView,
};

fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

fn at(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

fn device(role: Role, x: f64) -> DeviceSpec {
    device_with_apps(role, x, vec![AppProfile::wechat()])
}

fn device_with_apps(role: Role, x: f64, apps: Vec<AppProfile>) -> DeviceSpec {
    DeviceSpec {
        role,
        apps,
        mobility: Mobility::stationary(Position::new(x, 0.0)),
        battery_mah: None,
    }
}

fn world_config(seed: u64, duration_secs: u64) -> ScenarioConfig {
    let mut config = ScenarioConfig::new(secs(duration_secs), seed);
    config.mode = Mode::D2dFramework;
    config.reliable_delivery = true;
    config.telemetry = true;
    config
}

fn fault(at: SimTime, kind: FaultKind) -> WorldStim {
    WorldStim::Fault { at, kind }
}

fn require_accounted(d: &mut ScenarioDag<WorldHarness>) {
    d.require("delivery-accounted", delivery_accounted);
}

/// PR 5 link-establishment race, interleaving 1 (the original
/// regression): the attached relay departs with *two* of the member's
/// heartbeats in its buffer (one per app). Both are requeued with
/// independently jittered ~5 s retries; the first retry re-matches the
/// replacement relay and starts the ~4.9 s discovery + connection
/// setup, and the second fires *inside* that establishment window — it
/// must queue behind the establishing link, not tear it down or
/// double-send. The redelivery must indict the departed relay
/// (handover), not the link.
#[test]
fn departure_requeue_races_link_establishment() {
    run_reproducible(|| {
        let mut config = world_config(11, 700);
        config.add_device(device(Role::Relay, 0.0)); // relay A, id 0
        config.add_device(device(Role::Relay, 10.0)); // relay B, id 1
        config.add_device(device_with_apps(
            Role::Ue,
            1.0,
            vec![AppProfile::wechat(), AppProfile::whatsapp()],
        )); // UE, id 2
        let mut d = ScenarioDag::new("departure-requeue-races-establishment");
        // Relay A's collection window is anchored at its own heartbeat
        // (270 s); by 485 s it holds the member's WeChat (270 s) and
        // second WhatsApp (480 s) heartbeats, one flush still ~55 s out.
        let warm = d.advance("two-buffered-at-relay-a", at(485));
        let forwarded = d.expect("forwarded-to-relay-a", |v: &WorldView| {
            if v.forwards >= 2 && v.retries == 0 {
                Ok(format!("{} forward(s), no retries yet", v.forwards))
            } else {
                Err(format!("view {v:?}"))
            }
        });
        let depart = d.perturb(
            "relay-a-departs",
            fault(
                at(490),
                FaultKind::RelayDeparture {
                    device: DeviceId::new(0),
                    rejoin_after: None,
                },
            ),
        );
        let race = d.advance("retries-vs-link-setup", at(560));
        let handed_over = d.expect("one-handover-covers-both", |v: &WorldView| {
            // Both requeued retries ride ONE establishment to relay B:
            // the first re-match records the single handover and the
            // second retry queues behind the setting-up link. Tearing
            // the link down and re-matching (the reverted behaviour)
            // shows up as a second handover.
            if v.retries == 2 && v.handovers == 1 {
                Ok(String::from("2 retries, exactly 1 handover"))
            } else {
                Err(format!("view {v:?}"))
            }
        });
        d.chain(&[warm, forwarded, depart, race, handed_over]);
        require_accounted(&mut d);
        d.require("delivered-at-least-once", |r| {
            let delivered = r.delivery.as_ref().map(|x| x.delivered).unwrap_or(0);
            if delivered >= 1 {
                Ok(format!("{delivered} delivered"))
            } else {
                Err(format!("delivery {:?}", r.delivery))
            }
        });
        (d, WorldHarness::new(config))
    })
    .assert_ok();
}

/// PR 5 link-establishment race, interleaving 2: the relay departs just
/// *before* the member's heartbeat fires, so the fresh emission (not a
/// retry) races the establishment of the link to the replacement — the
/// first-forward path through the same pending-until-ready queue.
#[test]
fn emission_races_link_establishment_to_replacement() {
    run_reproducible(|| {
        let mut config = world_config(12, 700);
        config.add_device(device(Role::Relay, 0.0)); // relay A, id 0
        config.add_device(device(Role::Relay, 10.0)); // relay B, id 1
        config.add_device(device(Role::Ue, 1.0)); // UE, id 2
        let mut d = ScenarioDag::new("emission-races-establishment");
        let depart = d.perturb(
            "relay-a-departs-early",
            fault(
                at(269),
                FaultKind::RelayDeparture {
                    device: DeviceId::new(0),
                    rejoin_after: None,
                },
            ),
        );
        let race = d.advance("emission-vs-link-setup", at(360));
        let forwarded = d.expect("forwarded-despite-churn", |v: &WorldView| {
            if v.forwards >= 1 {
                Ok(format!("{} forward(s) through the replacement", v.forwards))
            } else {
                Err(format!("view {v:?}"))
            }
        });
        d.chain(&[depart, race, forwarded]);
        require_accounted(&mut d);
        d.require("no-relay-indicted", |r| {
            // The first forward simply matched the surviving relay; no
            // prior attempt failed, so no handover may be recorded.
            let handovers = r
                .events
                .iter()
                .filter(|e| {
                    matches!(
                        e.event,
                        d2d_heartbeat::sim::telemetry::TelemetryEvent::Handover { .. }
                    )
                })
                .count();
            if handovers == 0 {
                Ok(String::from("0 handovers"))
            } else {
                Err(format!("{handovers} handover(s) recorded"))
            }
        });
        (d, WorldHarness::new(config))
    })
    .assert_ok();
}

/// A transfer failure (interference on the sender's link) must indict
/// the *link*, not the relay: retries back off on the same attachment
/// and, once exhausted, degrade to cellular — no handover is recorded
/// when no relay failed.
#[test]
fn transfer_failure_indicts_link_not_relay() {
    run_reproducible(|| {
        let mut config = world_config(13, 700);
        config.add_device(device(Role::Relay, 0.0)); // relay, id 0
        config.add_device(device(Role::Ue, 1.0)); // UE, id 1
        let mut d = ScenarioDag::new("link-indicted-not-relay");
        let degrade = d.perturb(
            "jam-ue-link",
            fault(
                at(1),
                FaultKind::LinkDegrade {
                    device: DeviceId::new(1),
                    extra_loss: 1.0,
                    duration: secs(600),
                },
            ),
        );
        let drain = d.advance("retries-then-fallback", at(400));
        let degraded = d.expect("fell-back-to-cellular", |v: &WorldView| {
            if v.retries >= 1 && v.fallbacks >= 1 && v.handovers == 0 {
                Ok(format!(
                    "{} retry(ies) then {} fallback(s), 0 handovers",
                    v.retries, v.fallbacks
                ))
            } else {
                Err(format!("view {v:?}"))
            }
        });
        d.chain(&[degrade, drain, degraded]);
        require_accounted(&mut d);
        (d, WorldHarness::new(config))
    })
    .assert_ok();
}

/// A cellular outage queues direct-path heartbeats at the device; the
/// drain at outage end races each copy's expiry. A copy whose budget
/// survives the outage must be delivered on drain; the books must
/// balance either way.
#[test]
fn outage_drain_races_expiry() {
    run_reproducible(|| {
        let mut config = world_config(14, 900);
        // A lone UE: no relay in the cell, so every heartbeat takes the
        // direct cellular path — straight into the outage.
        config.add_device(device(Role::Ue, 0.0));
        let mut d = ScenarioDag::new("outage-drain-races-expiry");
        let outage = d.perturb(
            "uplink-outage",
            fault(
                at(260),
                FaultKind::CellularOutage {
                    duration: secs(300),
                },
            ),
        );
        let mid = d.advance("mid-outage", at(400));
        let queued = d.expect("heartbeat-queued-behind-outage", |v: &WorldView| {
            if v.outage_queued >= 1 {
                Ok(format!("{} queued", v.outage_queued))
            } else {
                Err(format!("view {v:?}"))
            }
        });
        let drained = d.advance("post-drain", at(600));
        let empty = d.expect("queue-drained", |v: &WorldView| {
            // Drained copies go out as ordinary cellular sends and land
            // in `delivered`, not the fallback counter.
            if v.outage_queued == 0 && v.delivered >= 1 {
                Ok(format!("queue empty, {} delivered on drain", v.delivered))
            } else {
                Err(format!("view {v:?}"))
            }
        });
        d.chain(&[outage, mid, queued, drained, empty]);
        require_accounted(&mut d);
        (d, WorldHarness::new(config))
    })
    .assert_ok();
}

/// Two departures of the same relay inside one epoch (it rejoins and
/// immediately departs again): the second retraction sweeps feedback
/// entries that are already retracted and must be a no-op — the
/// world-level face of `FeedbackTracker::retract`'s idempotency.
#[test]
fn double_relay_departure_same_epoch_is_survivable() {
    run_reproducible(|| {
        let mut config = world_config(15, 900);
        config.add_device(device(Role::Relay, 0.0)); // relay, id 0
        config.add_device(device(Role::Ue, 1.0)); // UE, id 1
        let mut d = ScenarioDag::new("double-departure-one-epoch");
        let warm = d.advance("first-heartbeat", at(290));
        let first = d.perturb(
            "depart-and-rejoin",
            fault(
                at(300),
                FaultKind::RelayDeparture {
                    device: DeviceId::new(0),
                    rejoin_after: Some(secs(20)),
                },
            ),
        );
        let second = d.perturb(
            "depart-again",
            fault(
                at(330),
                FaultKind::RelayDeparture {
                    device: DeviceId::new(0),
                    rejoin_after: None,
                },
            ),
        );
        let drain = d.advance("drain", at(700));
        let survived = d.expect("ue-recovered", |v: &WorldView| {
            if v.fallbacks + v.forwards >= 1 {
                Ok(format!(
                    "{} forward(s) + {} fallback(s) despite the churn",
                    v.forwards, v.fallbacks
                ))
            } else {
                Err(format!("view {v:?}"))
            }
        });
        d.chain(&[warm, first, second, drain, survived]);
        require_accounted(&mut d);
        d.require("never-read-as-dead", |r| {
            let ue = &r.devices[1];
            if ue.offline_secs == 0.0 {
                Ok(String::from("UE presence gap 0 s"))
            } else {
                Err(format!("{} s offline", ue.offline_secs))
            }
        });
        (d, WorldHarness::new(config))
    })
    .assert_ok();
}

/// Smoke check kept alongside the suite: the un-faulted two-device
/// world is quiet — no retries, no handovers, all heartbeats forwarded
/// and accounted. Anchors the adversarial scenarios above: whatever
/// they observe is caused by their scripted faults.
#[test]
fn unfaulted_world_is_quiet() {
    run_reproducible(|| {
        let mut config = world_config(16, 700);
        config.add_device(device(Role::Relay, 0.0));
        config.add_device(device(Role::Ue, 1.0));
        let mut d = ScenarioDag::new("unfaulted-quiet");
        let drain = d.advance("run", at(600));
        let quiet = d.expect("no-recovery-machinery", |v: &WorldView| {
            if v.forwards >= 1 && v.retries == 0 && v.handovers == 0 {
                Ok(format!("{} forward(s), nothing recovered", v.forwards))
            } else {
                Err(format!("view {v:?}"))
            }
        });
        d.chain(&[drain, quiet]);
        require_accounted(&mut d);
        (d, WorldHarness::new(config))
    })
    .assert_ok();
}
