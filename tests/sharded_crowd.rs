//! Property tests for the sharded crowd engine: however many worker
//! threads carry the cells, the merged fleet report is byte-identical
//! to the single-shard run — rendered console, metrics JSON and event
//! stream alike.

use d2d_heartbeat::bench::{run_crowd, CrowdConfig};
use d2d_heartbeat::core::world::Mode;
use d2d_heartbeat::sim::fault::{FaultKind, FaultPlan};
use d2d_heartbeat::sim::{DeviceId, SimDuration, SimTime};
use proptest::prelude::*;

/// Everything that should determine the output — pointedly *excluding*
/// the shard count.
#[derive(Debug, Clone)]
struct Fleet {
    seed: u64,
    phones: usize,
    relays: usize,
    area: f64,
    mode: Mode,
    faulted: bool,
}

fn arb_fleet() -> impl Strategy<Value = Fleet> {
    (
        any::<u64>(),
        12usize..40,
        1usize..6,
        // 150–320 m sides span a 2×2 to 4×4 cell grid, so the partition
        // is non-trivial and multiple shards have real work.
        150.0f64..320.0,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(seed, phones, relays, area, d2d, faulted)| Fleet {
            seed,
            phones,
            relays,
            area,
            mode: if d2d {
                Mode::D2dFramework
            } else {
                Mode::OriginalCellular
            },
            faulted,
        })
}

fn faults_for(fleet: &Fleet) -> FaultPlan {
    let mut plan = FaultPlan::new();
    if fleet.faulted {
        // One global fault (broadcast to every cell) and one targeted at
        // a device that always exists (routed to its owning cell).
        plan.schedule(
            SimTime::from_secs(600),
            FaultKind::CellularOutage {
                duration: SimDuration::from_secs(120),
            },
        );
        plan.schedule(
            SimTime::from_secs(900),
            FaultKind::LinkDrop {
                device: DeviceId::new((fleet.seed % fleet.phones as u64) as u32),
                d2d_down_for: SimDuration::from_secs(300),
            },
        );
    }
    plan
}

/// Runs one fleet at a given shard count and returns every observable
/// artifact as bytes.
fn artifacts(fleet: &Fleet, shards: usize) -> (String, String, String) {
    let report = run_crowd(&CrowdConfig {
        phones: fleet.phones,
        relays: fleet.relays,
        hours: 1,
        area_side_m: fleet.area,
        seed: fleet.seed,
        push_mins: 0,
        mode: fleet.mode,
        faults: faults_for(fleet),
        trace_capacity: 0,
        telemetry: true,
        reliable: true,
        shards: Some(shards),
    });
    let events: String = report.events.iter().map(|r| r.to_jsonl() + "\n").collect();
    (report.render(), report.metrics.to_json(), events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole contract: an S-shard run is byte-identical to the
    /// unsharded run for every artifact a user can observe.
    #[test]
    fn sharded_run_is_byte_identical_to_unsharded(fleet in arb_fleet()) {
        let baseline = artifacts(&fleet, 1);
        for shards in [2usize, 3] {
            let sharded = artifacts(&fleet, shards);
            prop_assert_eq!(&baseline.0, &sharded.0, "render differs at {} shards", shards);
            prop_assert_eq!(&baseline.1, &sharded.1, "metrics differ at {} shards", shards);
            prop_assert_eq!(&baseline.2, &sharded.2, "events differ at {} shards", shards);
        }
    }

    /// Oversubscription is harmless: more shards than populated cells
    /// clamps down rather than deadlocking or changing the output.
    #[test]
    fn shard_count_beyond_cells_clamps(fleet in arb_fleet()) {
        let baseline = artifacts(&fleet, 1);
        let oversubscribed = artifacts(&fleet, 64);
        prop_assert_eq!(baseline, oversubscribed);
    }
}

/// Regression: the stock CLI crowd (40 phones, 8 relays, area 40 m,
/// seed 7) panicked with "transfer on a link that is not ready" — a
/// delivery retry fired while the relay link was still establishing,
/// the redelivery path detached and re-matched, and the orphaned
/// `LinkReady` event then forwarded over the new, unfinished link.
/// Retries now queue behind an establishing link to a healthy relay,
/// and stale `LinkReady` events are skipped.
#[test]
fn retry_during_link_establishment_does_not_panic() {
    let report = run_crowd(&CrowdConfig {
        phones: 40,
        relays: 8,
        hours: 1,
        area_side_m: 40.0,
        seed: 7,
        push_mins: 0,
        mode: Mode::D2dFramework,
        faults: FaultPlan::new(),
        trace_capacity: 0,
        telemetry: true,
        reliable: true,
        shards: Some(1),
    });
    let delivery = report.delivery.expect("reliable run reports delivery");
    assert_eq!(
        delivery.generated,
        delivery.delivered + delivery.expired + delivery.dropped_dead + delivery.in_flight
    );
    assert_eq!(delivery.expired, 0);
    assert_eq!(delivery.dropped_dead, 0);
}
