//! Golden-telemetry regression: the metrics snapshot and event stream
//! of a fixed-seed faulted scenario are byte-reproducible — identical
//! JSON and JSONL — across runs *and* across sweep thread counts,
//! pinned to a committed hash, mirroring `golden_trace.rs`.
//!
//! If an intentional engine or telemetry change shifts the output,
//! re-run with `HBR_PRINT_GOLDEN=1 cargo test --test golden_telemetry
//! -- --nocapture` and update the constant below.

use d2d_heartbeat::apps::AppProfile;
use d2d_heartbeat::bench::run_sweep_with_threads;
use d2d_heartbeat::core::world::{
    DeviceSpec, Mode, Role, Scenario, ScenarioConfig, ScenarioReport,
};
use d2d_heartbeat::mobility::{Mobility, Position};
use d2d_heartbeat::sim::fault::FaultKind;
use d2d_heartbeat::sim::TelemetryEvent;
use d2d_heartbeat::sim::{DeviceId, SimDuration, SimTime};

/// FNV-1a over the serialized output — dependency-free and stable.
fn fnv1a(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

/// The committed fingerprint of the telemetry sweep below: every
/// point's metrics JSON plus its full JSONL event stream.
const GOLDEN_TELEMETRY_HASH: u64 = 0xbe99_77e6_695b_f60e;

/// The same faulted scenario as `golden_trace.rs`, with telemetry on.
fn faulted_config(seed: u64) -> ScenarioConfig {
    let mut config = ScenarioConfig::new(SimDuration::from_secs(2 * 3600), seed);
    config.mode = Mode::D2dFramework;
    config.telemetry = true;
    // Exercise every fault kind in one run.
    config.faults.schedule(
        SimTime::from_secs(700),
        FaultKind::LinkDegrade {
            device: DeviceId::new(1),
            extra_loss: 0.9,
            duration: SimDuration::from_secs(400),
        },
    );
    config.faults.schedule(
        SimTime::from_secs(1000),
        FaultKind::LinkDrop {
            device: DeviceId::new(2),
            d2d_down_for: SimDuration::from_secs(600),
        },
    );
    config.faults.schedule(
        SimTime::from_secs(1800),
        FaultKind::CellularOutage {
            duration: SimDuration::from_secs(450),
        },
    );
    config.faults.schedule(
        SimTime::from_secs(3000),
        FaultKind::DiscoveryBlackout {
            duration: SimDuration::from_secs(300),
        },
    );
    config.faults.schedule(
        SimTime::from_secs(4000),
        FaultKind::RelayDeparture {
            device: DeviceId::new(0),
            rejoin_after: Some(SimDuration::from_secs(900)),
        },
    );
    config.faults.schedule(
        SimTime::from_secs(6000),
        FaultKind::PayloadLoss {
            device: DeviceId::new(3),
            probability: 0.7,
            duration: SimDuration::from_secs(500),
        },
    );
    config.add_device(spec(Role::Relay, 0.0));
    for x in 1..=4 {
        config.add_device(spec(Role::Ue, x as f64));
    }
    config
}

fn spec(role: Role, x: f64) -> DeviceSpec {
    DeviceSpec {
        role,
        apps: vec![AppProfile::wechat()],
        mobility: Mobility::stationary(Position::new(x, 0.0)),
        battery_mah: None,
    }
}

fn faulted_report(seed: u64) -> ScenarioReport {
    Scenario::new(faulted_config(seed)).run()
}

/// One point's telemetry, serialized exactly as the CLI would write it.
fn telemetry_text(report: &ScenarioReport) -> String {
    let mut out = report.metrics.to_json();
    out.push('\n');
    for record in &report.events {
        out.push_str(&record.to_jsonl());
        out.push('\n');
    }
    out
}

fn sweep(threads: usize) -> String {
    let points: Vec<u64> = vec![97, 98, 99, 100];
    run_sweep_with_threads(threads, 97, points, |&seed, _| {
        telemetry_text(&faulted_report(seed))
    })
    .join("===\n")
}

#[test]
fn telemetry_is_byte_reproducible_across_thread_counts() {
    let single = sweep(1);
    let parallel = sweep(4);
    assert_eq!(
        single, parallel,
        "telemetry output depends on scheduling — determinism broken"
    );
    if std::env::var("HBR_PRINT_GOLDEN").is_ok() {
        println!("golden telemetry hash: {:#018x}", fnv1a(&single));
    }
    assert_eq!(
        fnv1a(&single),
        GOLDEN_TELEMETRY_HASH,
        "the golden telemetry drifted; if the engine change is \
         intentional, re-run with HBR_PRINT_GOLDEN=1 and update \
         GOLDEN_TELEMETRY_HASH"
    );
}

#[test]
fn repeated_runs_emit_identical_telemetry() {
    assert_eq!(
        telemetry_text(&faulted_report(97)),
        telemetry_text(&faulted_report(97))
    );
}

#[test]
fn fault_injected_events_align_with_the_plan() {
    let config = faulted_config(97);
    let plan = config.faults.clone();
    let report = Scenario::new(config).run();

    let injected: Vec<(SimTime, usize, &'static str, Option<u32>)> = report
        .events
        .iter()
        .filter_map(|r| match r.event {
            TelemetryEvent::FaultInjected {
                index,
                kind,
                device,
            } => Some((r.time, index, kind, device)),
            _ => None,
        })
        .collect();

    // Every scheduled entry fired exactly once, at its configured time,
    // with the plan's own kind label and target device.
    assert_eq!(injected.len(), plan.events().len());
    for (i, scheduled) in plan.events().iter().enumerate() {
        let &(at, index, kind, device) = &injected[i];
        assert_eq!(index, i, "fault events must keep plan order");
        assert_eq!(at, scheduled.at);
        assert_eq!(kind, scheduled.kind.label());
        assert_eq!(device, scheduled.kind.device().map(|d| d.index()));
    }

    // The matching counters agree with the stream.
    let total: u64 = report
        .metrics
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("hbr_faults_injected_total"))
        .map(|(_, n)| n)
        .sum();
    assert_eq!(total, plan.events().len() as u64);
}
